/**
 * @file
 * Design-knob ablations the paper reports in prose (§5.3, §6):
 *   1. the acceptance temperature t — the paper swept 0..10 and chose
 *      10 (near-greedy);
 *   2. the resynthesis sampling probability — the paper fixes 1.5%;
 *   3. synchronous vs asynchronous resynthesis (§5.3).
 * Each sweep prints final 2q counts on a small circuit panel.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"
#include "workloads/variational.h"

using namespace guoq;
using namespace guoq::bench;

namespace {

std::vector<workloads::Benchmark>
panel(ir::GateSetKind set)
{
    std::vector<workloads::Benchmark> out;
    out.push_back({"barenco_tof_4", "tof",
                   transpile::toGateSet(workloads::barencoTof(4), set)});
    out.push_back({"qaoa_6", "qaoa",
                   transpile::toGateSet(workloads::qaoaMaxCut(6, 2, 11),
                                        set)});
    out.push_back({"qft_5", "qft",
                   transpile::toGateSet(workloads::qft(5), set)});
    return out;
}

std::size_t
runWith(const ir::Circuit &c, ir::GateSetKind set,
        const core::GuoqConfig &base)
{
    core::GuoqConfig cfg = base;
    return core::optimize(c, set, cfg).best.twoQubitGateCount();
}

} // namespace

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const auto circuits = panel(set);
    const double budget = guoqBudget(3.0);

    core::GuoqConfig base;
    base.epsilonTotal = 1e-5;
    base.timeBudgetSeconds = budget;
    base.seed = support::benchSeed();

    std::printf("=== Ablation 1: acceptance temperature t "
                "(paper sweeps 0..10, picks 10) ===\n\n");
    {
        support::TextTable table(
            {"benchmark", "2q in", "t=0", "t=2", "t=10", "t=40"});
        for (const auto &b : circuits) {
            std::vector<std::string> row{
                b.name, std::to_string(b.circuit.twoQubitGateCount())};
            for (double t : {0.0, 2.0, 10.0, 40.0}) {
                core::GuoqConfig cfg = base;
                cfg.temperature = t;
                row.push_back(
                    std::to_string(runWith(b.circuit, set, cfg)));
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::printf("shape check: t=0 (always accept worse) wanders; "
                    "large t is near-greedy and stable.\n\n");
    }

    std::printf("=== Ablation 2: resynthesis sampling probability "
                "(paper: 1.5%%) ===\n\n");
    {
        support::TextTable table({"benchmark", "2q in", "0.1%", "1.5%",
                                  "10%", "50%"});
        for (const auto &b : circuits) {
            std::vector<std::string> row{
                b.name, std::to_string(b.circuit.twoQubitGateCount())};
            for (double p : {0.001, 0.015, 0.10, 0.50}) {
                core::GuoqConfig cfg = base;
                cfg.resynthProbability = p;
                row.push_back(
                    std::to_string(runWith(b.circuit, set, cfg)));
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::printf("shape check: too-low starves the slow mode; "
                    "too-high starves the fast mode (resynthesis "
                    "calls monopolize the budget).\n\n");
    }

    std::printf("=== Ablation 3: synchronous vs asynchronous "
                "resynthesis (paper 5.3) ===\n\n");
    {
        support::TextTable table(
            {"benchmark", "2q in", "sync", "async"});
        for (const auto &b : circuits) {
            core::GuoqConfig sync_cfg = base;
            core::GuoqConfig async_cfg = base;
            async_cfg.asyncResynthesis = true;
            table.addRow({b.name,
                          std::to_string(b.circuit.twoQubitGateCount()),
                          std::to_string(runWith(b.circuit, set,
                                                 sync_cfg)),
                          std::to_string(runWith(b.circuit, set,
                                                 async_cfg))});
        }
        table.print();
        std::printf("shape check: async keeps rewriting while a "
                    "synthesis call is in flight, so it matches or "
                    "beats sync at equal wall clock.\n");
    }
    return 0;
}
