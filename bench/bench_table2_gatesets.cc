/**
 * @file
 * Table 2: the five target gate sets, their native gates, and their
 * architectures — printed from the registry, plus per-set rule-library
 * and error-model summaries to show what each instantiation wires up.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "fidelity/error_model.h"
#include "rewrite/rule.h"
#include "support/table.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runTable2(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Table 2: gate sets ===\n\n");
    support::TextTable table(
        {"gate set", "gates", "architecture", "rules", "2q err",
         "1q err"});
    for (ir::GateSetKind set : ir::allGateSets()) {
        std::string gates;
        for (ir::GateKind kind : ir::nativeGates(set)) {
            if (!gates.empty())
                gates += ", ";
            gates += ir::gateName(kind);
        }
        const fidelity::ErrorModel &m = fidelity::errorModelFor(set);
        const std::string set_name = ir::gateSetName(set);
        table.addRow({set_name, gates, ir::gateSetArchitecture(set),
                      std::to_string(rewrite::rulesFor(set).size()),
                      support::fmt(m.twoQubitError, 6),
                      support::fmt(m.oneQubitError, 6)});
        auto setRow = [&](const std::string &metric, double value) {
            CaseResult row;
            row.benchmark = set_name;
            row.tool = "gate-set";
            row.metric = metric;
            row.value = value;
            ctx.record(std::move(row));
        };
        setRow("rules",
               static_cast<double>(rewrite::rulesFor(set).size()));
        setRow("two_qubit_error", m.twoQubitError);
        setRow("one_qubit_error", m.oneQubitError);
    }
    if (ctx.pretty())
        table.print();
}

const CaseRegistrar kTable2(
    "table2", "target gate sets, rule libraries, error models", 210,
    runTable2);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
