/**
 * @file
 * Table 2: the five target gate sets, their native gates, and their
 * architectures — printed from the registry, plus per-set rule-library
 * and error-model summaries to show what each instantiation wires up.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "rewrite/rule.h"

using namespace guoq;

int
main()
{
    std::printf("=== Table 2: gate sets ===\n\n");
    support::TextTable table(
        {"gate set", "gates", "architecture", "rules", "2q err",
         "1q err"});
    for (ir::GateSetKind set : ir::allGateSets()) {
        std::string gates;
        for (ir::GateKind kind : ir::nativeGates(set)) {
            if (!gates.empty())
                gates += ", ";
            gates += ir::gateName(kind);
        }
        const fidelity::ErrorModel &m = fidelity::errorModelFor(set);
        table.addRow({ir::gateSetName(set), gates,
                      ir::gateSetArchitecture(set),
                      std::to_string(rewrite::rulesFor(set).size()),
                      support::fmt(m.twoQubitError, 6),
                      support::fmt(m.oneQubitError, 6)});
    }
    table.print();
    return 0;
}
