/**
 * @file
 * Fig. 12 (Q4): the fault-tolerant Clifford+T gate set — GUOQ
 * (instantiated with the Synthetiq-style finite synthesizer) vs
 * Qiskit-like, BQSKit-style partition+Synthetiq, a Synthetiq-only
 * optimizer (resynth-only GUOQ), QUESO-like beam, and the PyZX
 * stand-in. Two cases: "fig12/t" (T-gate reduction, top row) and
 * "fig12/2q" (CX reduction, bottom row).
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "core/optimizer.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig12(CaseContext &ctx, const Comparison &cmp, const char *header)
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const double budget = ctx.budget(3.0);
    const core::Objective obj = core::Objective::TThenTwoQubit;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    if (ctx.pretty())
        std::printf("=== %s ===\n\n", header);

    // Every tool in this figure dispatches through the optimizer
    // registry — each display name is the paper's tool label, each
    // algorithm the registry entry that stands in for it.
    core::OptimizeRequest base;
    base.set = set;
    base.objective = obj;
    base.timeBudgetSeconds = budget;

    core::OptimizeRequest approx = base;
    approx.epsilonTotal = 1e-5;

    core::OptimizeRequest queso = base;
    queso.params["beam-width"] = "32";

    std::vector<Tool> tools;
    tools.push_back(registryTool(ctx, "qiskit", "qiskit-like", base));
    tools.push_back(
        registryTool(ctx, "bqskit", "partition-resynth", approx));
    tools.push_back(
        registryTool(ctx, "synthetiq", "guoq-resynth", approx));
    tools.push_back(registryTool(ctx, "queso", "beam", queso));
    tools.push_back(registryTool(ctx, "pyzx", "phase-poly", base));

    const Tool guoq = registryTool(ctx, "guoq", "guoq", approx);

    runComparison(ctx, suite, guoq, tools, cmp);
}

void
runFig12T(CaseContext &ctx)
{
    Comparison cmp;
    cmp.metricName = "T gate reduction";
    cmp.metricKey = "t_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.tGateCount(), after.tGateCount());
    };
    runFig12(ctx, cmp, "Fig. 12 (top): T gate reduction, clifford+t");
}

void
runFig12TwoQubit(CaseContext &ctx)
{
    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runFig12(ctx, cmp,
             "Fig. 12 (bottom): 2q (CX) reduction, clifford+t");
    if (ctx.pretty())
        std::printf("shape check: pyzx competes on T reduction but "
                    "never reduces CX; guoq wins CX reduction "
                    "broadly.\n");
}

const CaseRegistrar kFig12T(
    "fig12/t", "GUOQ vs tools, clifford+t T reduction", 120, runFig12T);
const CaseRegistrar kFig12TwoQubit(
    "fig12/2q", "GUOQ vs tools, clifford+t CX reduction", 121,
    runFig12TwoQubit);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
