/**
 * @file
 * Fig. 12 (Q4): the fault-tolerant Clifford+T gate set — GUOQ
 * (instantiated with the Synthetiq-style finite synthesizer) vs
 * Qiskit-like, BQSKit-style partition+Synthetiq, a Synthetiq-only
 * optimizer (resynth-only GUOQ), QUESO-like beam, and the PyZX
 * stand-in. Two cases: "fig12/t" (T-gate reduction, top row) and
 * "fig12/2q" (CX reduction, bottom row).
 */

#include <cstdio>

#include "baselines/beam_search.h"
#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "baselines/phase_poly.h"
#include "bench/harness.h"
#include "bench/registry.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig12(CaseContext &ctx, const Comparison &cmp, const char *header)
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const double budget = ctx.budget(3.0);
    const core::Objective obj = core::Objective::TThenTwoQubit;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    if (ctx.pretty())
        std::printf("=== %s ===\n\n", header);

    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 3.0;
    spec.cfg.epsilonTotal = 1e-5;
    spec.cfg.objective = obj;

    GuoqSpec synthetiq = spec;
    synthetiq.cfg.selection = core::TransformSelection::ResynthOnly;

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"synthetiq", [&ctx, synthetiq](const ir::Circuit &c,
                                        std::uint64_t seed) {
             return runGuoq(ctx, synthetiq, c, seed);
         }},
        {"queso", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = obj;
             o.epsilonTotal = 0;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 32;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
        {"pyzx", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::phasePolyOptimize(c, set);
         }},
    };

    const Tool guoq{"guoq",
                    [&ctx, spec](const ir::Circuit &c, std::uint64_t seed) {
                        return runGuoq(ctx, spec, c, seed);
                    }};

    runComparison(ctx, suite, guoq, tools, cmp);
}

void
runFig12T(CaseContext &ctx)
{
    Comparison cmp;
    cmp.metricName = "T gate reduction";
    cmp.metricKey = "t_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.tGateCount(), after.tGateCount());
    };
    runFig12(ctx, cmp, "Fig. 12 (top): T gate reduction, clifford+t");
}

void
runFig12TwoQubit(CaseContext &ctx)
{
    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runFig12(ctx, cmp,
             "Fig. 12 (bottom): 2q (CX) reduction, clifford+t");
    if (ctx.pretty())
        std::printf("shape check: pyzx competes on T reduction but "
                    "never reduces CX; guoq wins CX reduction "
                    "broadly.\n");
}

const CaseRegistrar kFig12T(
    "fig12/t", "GUOQ vs tools, clifford+t T reduction", 120, runFig12T);
const CaseRegistrar kFig12TwoQubit(
    "fig12/2q", "GUOQ vs tools, clifford+t CX reduction", 121,
    runFig12TwoQubit);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
