/**
 * @file
 * Fig. 12 (Q4): the fault-tolerant Clifford+T gate set — GUOQ
 * (instantiated with the Synthetiq-style finite synthesizer) vs
 * Qiskit-like, BQSKit-style partition+Synthetiq, a Synthetiq-only
 * optimizer (resynth-only GUOQ), QUESO-like beam, and the PyZX
 * stand-in. Top row: T-gate reduction; bottom row: 2q (CX) reduction.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const double budget = guoqBudget(3.0);
    const core::Objective obj = core::Objective::TThenTwoQubit;
    const auto suite = benchSuiteFor(set, suiteCap(12));

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"synthetiq", [set, obj, budget](const ir::Circuit &c,
                                         std::uint64_t seed) {
             return runGuoq(c, set, budget, seed, obj,
                            core::TransformSelection::ResynthOnly);
         }},
        {"queso", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = obj;
             o.epsilonTotal = 0;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 32;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
        {"pyzx", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::phasePolyOptimize(c, set);
         }},
    };

    auto guoq_run = [set, obj, budget](const ir::Circuit &c,
                                       std::uint64_t seed) {
        return runGuoq(c, set, budget, seed, obj);
    };

    std::printf("=== Fig. 12 (top): T gate reduction, clifford+t ===\n\n");
    Comparison tred;
    tred.metricName = "T gate reduction";
    tred.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.tGateCount(), after.tGateCount());
    };
    runComparison(suite, guoq_run, tools, tred);

    std::printf("=== Fig. 12 (bottom): 2q (CX) reduction, "
                "clifford+t ===\n\n");
    Comparison cxred;
    cxred.metricName = "2q gate reduction";
    cxred.metric = [](const ir::Circuit &before,
                      const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(suite, guoq_run, tools, cxred);

    std::printf("shape check: pyzx competes on T reduction but never "
                "reduces CX; guoq wins CX reduction broadly.\n");
    return 0;
}
