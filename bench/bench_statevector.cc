/**
 * @file
 * Perf trajectory of the statevector gate-application path: time a
 * sampling-verification-style shot (random product-state prep + one
 * deep circuit) per register width under three tools — `generic`
 * (gate-by-gate legacy matrix apply), `scalar` (specialized kernels,
 * fusion and cache blocking, SIMD forced off), and the detected SIMD
 * backend (`avx2`/`neon`) when one exists — and record per-width
 * speedups over `generic` plus a max-amplitude-difference guard that
 * the tools computed the same state. The PR-007 acceptance criterion
 * (>= 4x SIMD / >= 2x scalar on a 20+-qubit shot) is measured here as
 * the `statevector` case of guoq-bench-v1 (BENCH_007.json); the
 * methodology is documented in docs/PERFORMANCE.md.
 *
 * Widths scale with --scale so the CI smoke run (0.05) stays in the
 * 12/16-qubit range while artifact runs (>= 0.5) include the 20-qubit
 * acceptance width (and 22 at scale >= 2).
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/registry.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "sim/kernels.h"
#include "sim/statevector.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace guoq;
using namespace guoq::bench;
using linalg::Complex;

/** A deep random circuit over the IBM Eagle native set (Rz, SX, X,
 *  CX): a realistic mix of diagonal, dense, and permutation kernels. */
ir::Circuit
randomShotCircuit(int num_qubits, int num_gates, support::Rng &rng)
{
    const std::vector<ir::GateKind> &kinds =
        ir::nativeGates(ir::GateSetKind::IbmEagle);
    ir::Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const ir::GateKind kind = kinds[rng.index(kinds.size())];
        if (ir::gateArity(kind) == 2) {
            if (num_qubits < 2) {
                --i;
                continue;
            }
            const int a = static_cast<int>(
                rng.index(static_cast<std::size_t>(num_qubits)));
            int b = a;
            while (b == a)
                b = static_cast<int>(
                    rng.index(static_cast<std::size_t>(num_qubits)));
            c.add(kind, {a, b});
            continue;
        }
        const int q = static_cast<int>(
            rng.index(static_cast<std::size_t>(num_qubits)));
        std::vector<double> params;
        for (int p = 0; p < ir::gateParamCount(kind); ++p)
            params.push_back(rng.uniform(-M_PI, M_PI));
        c.add(kind, {q}, std::move(params));
    }
    return c;
}

/** The sampling backend's shot prep: one Haar-random U3 per qubit. */
ir::Circuit
randomPrep(int num_qubits, support::Rng &rng)
{
    ir::Circuit prep(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        const double theta = std::acos(1.0 - 2.0 * rng.uniform());
        const double phi = rng.uniform(0, 2.0 * M_PI);
        prep.add(ir::GateKind::U3, {q}, {theta, phi, 0.0});
    }
    return prep;
}

struct ShotOutcome
{
    double seconds = 0;
    sim::StateVector state{0};
};

/** One timed shot: |0..0> -> prep -> circuit, through @p generic's
 *  path or the kernel path under the current SIMD policy. */
ShotOutcome
timedShot(const ir::Circuit &prep, const ir::Circuit &c, bool generic)
{
    ShotOutcome out;
    sim::StateVector sv(c.numQubits());
    const support::Timer timer;
    if (generic) {
        sv.applyGeneric(prep);
        sv.applyGeneric(c);
    } else {
        sv.apply(prep);
        sv.apply(c);
    }
    out.seconds = timer.seconds();
    out.state = std::move(sv);
    return out;
}

std::string
fmt(const char *spec, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, v);
    return buf;
}

double
maxAbsDiff(const sim::StateVector &a, const sim::StateVector &b)
{
    double worst = 0;
    for (std::size_t i = 0; i < a.dim(); ++i)
        worst = std::max(worst,
                         std::abs(a.amplitudes()[i] - b.amplitudes()[i]));
    return worst;
}

void
runStatevector(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Statevector kernels: sampling-verify shot "
                    "time vs the generic apply ===\n\n");

    std::vector<int> widths = {12, 16};
    if (ctx.opts().scale >= 0.5)
        widths.push_back(20);
    if (ctx.opts().scale >= 2.0)
        widths.push_back(22);

    // Tool order matters: generic runs first so the kernel tools can
    // be checked against its state. The SIMD tool only exists when the
    // hardware offers a backend beyond scalar.
    std::vector<std::string> tools = {"generic", "scalar"};
    {
        const sim::kernels::SimdPolicy saved = sim::kernels::simdPolicy();
        sim::kernels::setSimdPolicy(sim::kernels::SimdPolicy::Auto);
        const std::string simd = sim::kernels::backendName();
        sim::kernels::setSimdPolicy(saved);
        if (simd != "scalar")
            tools.push_back(simd);
    }

    support::TextTable table(
        {"case", "tool", "shot s", "speedup", "max |amp diff|"});

    for (const int n : widths) {
        support::Rng build_rng(900 + static_cast<std::uint64_t>(n));
        const ir::Circuit c = randomShotCircuit(n, 8 * n, build_rng);
        const std::string bench =
            support::strcat("verify_shot_", n, "q");

        std::vector<double> best(tools.size(), 0);
        for (int t = 0; t < ctx.opts().trials; ++t) {
            const std::uint64_t seed = ctx.opts().trialSeed(t);
            support::Rng prep_rng(seed);
            const ir::Circuit prep = randomPrep(n, prep_rng);

            sim::StateVector generic_state{0};
            for (std::size_t k = 0; k < tools.size(); ++k) {
                const std::string &tool = tools[k];
                sim::kernels::setSimdPolicy(
                    tool == "scalar"
                        ? sim::kernels::SimdPolicy::ForceScalar
                        : sim::kernels::SimdPolicy::Auto);
                const ShotOutcome shot =
                    timedShot(prep, c, tool == "generic");
                sim::kernels::setSimdPolicy(
                    sim::kernels::SimdPolicy::Auto);

                const double diff =
                    k == 0 ? 0.0
                           : maxAbsDiff(shot.state, generic_state);
                if (k == 0)
                    generic_state = shot.state;

                CaseResult row;
                row.benchmark = bench;
                row.tool = tool;
                row.metric = "shot_seconds";
                row.value = shot.seconds;
                row.seconds = shot.seconds;
                row.trial = t;
                row.seed = seed;
                ctx.record(std::move(row));

                if (k > 0) {
                    CaseResult guard;
                    guard.benchmark = bench;
                    guard.tool = tool;
                    guard.metric = "max_amp_diff_vs_generic";
                    guard.value = diff;
                    guard.trial = t;
                    guard.seed = seed;
                    ctx.record(std::move(guard));
                }

                if (t == 0 || shot.seconds < best[k])
                    best[k] = shot.seconds;
                if (t == 0)
                    table.addRow(
                        {bench, tool, fmt("%.4f", shot.seconds),
                         k == 0 ? "1.00x"
                                : fmt("%.2fx",
                                      best[0] / shot.seconds),
                         k == 0 ? "-" : fmt("%.2e", diff)});
            }
        }

        // Aggregate rows: best-of-trials speedup per kernel tool —
        // the acceptance metric at the 20-qubit width.
        for (std::size_t k = 1; k < tools.size(); ++k) {
            CaseResult agg;
            agg.benchmark = bench;
            agg.tool = tools[k];
            agg.metric = "speedup_vs_generic";
            agg.value = best[k] > 0 ? best[0] / best[k] : 0.0;
            agg.trial = 0;
            agg.seed = ctx.opts().trialSeed(0);
            ctx.record(std::move(agg));
        }
    }

    if (ctx.pretty()) {
        table.print();
        std::printf("\nshape check: the kernel path reproduces the "
                    "generic state (max |amp diff| ~ 1e-15) and the "
                    "20+-qubit shot speeds up >= 2x scalar, >= 4x with "
                    "a SIMD backend.\n");
    }
}

const CaseRegistrar kStatevector("statevector",
                                 "statevector kernels vs generic "
                                 "apply: sampling-verify shot times",
                                 320, runStatevector);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
