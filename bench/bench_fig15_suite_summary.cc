/**
 * @file
 * Fig. 15 (Appendix B): the benchmark suite's total gate counts per
 * gate set as a log-bucket histogram, plus per-family counts — the
 * suite composition summary.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "bench/registry.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig15(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Fig. 15: suite total gate counts per gate set "
                    "(log-scale buckets) ===\n\n");

    for (ir::GateSetKind set : ir::allGateSets()) {
        const auto suite = workloads::suiteFor(set);
        // Buckets: [10^k, 10^(k+0.5)).
        std::map<int, int> hist;
        std::size_t min_q = 1u << 20, max_q = 0;
        for (const auto &b : suite) {
            const double lg =
                std::log10(static_cast<double>(b.circuit.size()));
            ++hist[static_cast<int>(std::floor(lg * 2))];
            min_q = std::min(min_q,
                             static_cast<std::size_t>(
                                 b.circuit.numQubits()));
            max_q = std::max(max_q,
                             static_cast<std::size_t>(
                                 b.circuit.numQubits()));
        }
        const std::string set_name = ir::gateSetName(set);
        auto suiteRow = [&](const std::string &metric, double value) {
            CaseResult row;
            row.benchmark = set_name;
            row.tool = "suite";
            row.metric = metric;
            row.value = value;
            ctx.record(std::move(row));
        };
        suiteRow("circuits", static_cast<double>(suite.size()));
        suiteRow("min_qubits", static_cast<double>(min_q));
        suiteRow("max_qubits", static_cast<double>(max_q));
        for (const auto &[bucket, count] : hist)
            suiteRow("bucket_" + std::to_string(bucket),
                     static_cast<double>(count));

        if (!ctx.pretty())
            continue;
        std::printf("%-11s (%zu circuits, %zu-%zu qubits)\n",
                    set_name.c_str(), suite.size(), min_q, max_q);
        for (const auto &[bucket, count] : hist) {
            const double lo = std::pow(10.0, bucket / 2.0);
            std::printf("  >= %6.0f gates: ", lo);
            for (int i = 0; i < count; ++i)
                std::printf("#");
            std::printf(" (%d)\n", count);
        }
        std::printf("\n");
    }

    if (ctx.pretty())
        std::printf("per-family composition of the generic suite:\n");
    std::map<std::string, int> families;
    for (const auto &b : workloads::standardSuite())
        ++families[b.family];
    for (const auto &[family, count] : families) {
        CaseResult row;
        row.benchmark = family;
        row.tool = "suite";
        row.metric = "family_count";
        row.value = count;
        ctx.record(std::move(row));
        if (ctx.pretty())
            std::printf("  %-12s %d\n", family.c_str(), count);
    }
}

const CaseRegistrar kFig15(
    "fig15", "benchmark suite composition per gate set", 150, runFig15);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
