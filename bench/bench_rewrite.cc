/**
 * @file
 * Perf trajectory of the rewrite hot path: iterations/sec of a
 * GUOQ-style Metropolis rewrite loop (2q-count objective) under two
 * tools — `legacy` (applyRulePassRandom: fresh Matcher + full-circuit
 * rebuild + full-cost rescan per attempt) and `engine` (the
 * incremental rewrite::RewriteEngine: persistent DAG, kind-indexed
 * anchor buckets, delta-cost counters) — at three circuit sizes, with
 * per-size speedup aggregates. Both tools replay the identical
 * decision sequence (same RNG draws, bit-identical costs), so the run
 * doubles as an end-to-end differential check: the
 * `engine_matches_legacy` guard row is 1 only when the final circuits
 * are gate-for-gate equal.
 *
 * The PR-010 acceptance criterion (>= 5x iterations/sec at the
 * largest size) is measured here as the `rewrite_throughput` case of
 * guoq-bench-v1 (BENCH_008.json); methodology in docs/PERFORMANCE.md.
 * Iteration counts scale with --scale so the CI smoke run (0.05)
 * finishes in seconds while artifact runs exercise long loops.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/registry.h"
#include "core/cost.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "rewrite/applier.h"
#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

/** A random circuit over the IBM Eagle native set (Rz, SX, X, CX). */
ir::Circuit
randomEagleCircuit(int num_qubits, int num_gates, support::Rng &rng)
{
    const std::vector<ir::GateKind> &kinds =
        ir::nativeGates(ir::GateSetKind::IbmEagle);
    ir::Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const ir::GateKind kind = kinds[rng.index(kinds.size())];
        if (ir::gateArity(kind) == 2) {
            const int a = static_cast<int>(
                rng.index(static_cast<std::size_t>(num_qubits)));
            int b = a;
            while (b == a)
                b = static_cast<int>(
                    rng.index(static_cast<std::size_t>(num_qubits)));
            c.add(kind, {a, b});
            continue;
        }
        const int q = static_cast<int>(
            rng.index(static_cast<std::size_t>(num_qubits)));
        std::vector<double> params;
        for (int p = 0; p < ir::gateParamCount(kind); ++p)
            params.push_back(rng.uniform(-M_PI, M_PI));
        c.add(kind, {q}, std::move(params));
    }
    return c;
}

struct LoopOutcome
{
    double seconds = 0;
    long accepted = 0;
    ir::Circuit final_;
};

/** Shared Metropolis decision (the GUOQ accept rule, temperature 10). */
bool
decide(double cost_cand, double cost_curr, support::Rng &rng)
{
    if (cost_cand <= cost_curr)
        return true;
    const double p =
        std::exp(-10.0 * cost_cand / std::max(cost_curr, 1e-12));
    return rng.chance(p);
}

/** The pre-engine loop: one full Matcher + rebuild + rescan per try. */
LoopOutcome
runLegacyLoop(const ir::Circuit &c,
              const std::vector<rewrite::RewriteRule> &rules,
              const core::CostFunction &cost, long iters,
              std::uint64_t seed)
{
    LoopOutcome out;
    support::Rng rng(seed);
    const support::Timer timer;
    ir::Circuit curr = c;
    double cost_curr = cost(curr);
    for (long i = 0; i < iters; ++i) {
        const rewrite::RewriteRule &rule = rules[rng.index(rules.size())];
        rewrite::PassResult r =
            rewrite::applyRulePassRandom(curr, rule, rng);
        if (r.applications == 0)
            continue;
        const double cost_cand = cost(r.circuit);
        if (!decide(cost_cand, cost_curr, rng))
            continue;
        curr = std::move(r.circuit);
        cost_curr = cost_cand;
        ++out.accepted;
    }
    out.seconds = timer.seconds();
    out.final_ = std::move(curr);
    return out;
}

/** The same loop through the incremental engine (same RNG draws). */
LoopOutcome
runEngineLoop(const ir::Circuit &c,
              const std::vector<rewrite::RewriteRule> &rules,
              const core::CostFunction &cost, long iters,
              std::uint64_t seed)
{
    LoopOutcome out;
    support::Rng rng(seed);
    const support::Timer timer;
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    double cost_curr = cost.fromCounts(engine.counts());
    for (long i = 0; i < iters; ++i) {
        const rewrite::RewriteRule &rule = rules[rng.index(rules.size())];
        auto att = engine.preparePassRandom(rule, rng);
        if (!att)
            continue;
        const double cost_cand = cost.fromCounts(att->counts);
        if (!decide(cost_cand, cost_curr, rng)) {
            engine.discard();
            continue;
        }
        engine.commit();
        cost_curr = cost_cand;
        ++out.accepted;
    }
    out.seconds = timer.seconds();
    out.final_ = engine.release();
    return out;
}

std::string
fmt(const char *spec, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, v);
    return buf;
}

void
runRewriteThroughput(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Rewrite engine: Metropolis loop iterations/sec "
                    "vs the legacy pass ===\n\n");

    const ir::GateSetKind set = ir::GateSetKind::IbmEagle;
    const std::vector<rewrite::RewriteRule> &rules = rewrite::rulesFor(set);
    const core::CostFunction cost(core::Objective::TwoQubitCount, set);

    struct Size
    {
        int qubits;
        int gates;
    };
    const std::vector<Size> sizes = {{8, 64}, {12, 256}, {16, 1024}};
    const long iters = std::max<long>(
        200, static_cast<long>(4000.0 * ctx.opts().scale));

    support::TextTable table({"case", "tool", "iters/s", "speedup",
                              "matches legacy"});

    for (const Size &sz : sizes) {
        support::Rng build_rng(700 + static_cast<std::uint64_t>(sz.gates));
        const ir::Circuit c =
            randomEagleCircuit(sz.qubits, sz.gates, build_rng);
        const std::string bench =
            support::strcat("rewrite_", sz.qubits, "q_", sz.gates, "g");

        double best_legacy = 0;
        double best_engine = 0;
        bool all_match = true;
        for (int t = 0; t < ctx.opts().trials; ++t) {
            const std::uint64_t seed = ctx.opts().trialSeed(t);
            const LoopOutcome legacy =
                runLegacyLoop(c, rules, cost, iters, seed);
            const LoopOutcome engine =
                runEngineLoop(c, rules, cost, iters, seed);
            const bool match =
                legacy.final_.gates() == engine.final_.gates() &&
                legacy.accepted == engine.accepted;
            all_match = all_match && match;

            const double legacy_ips =
                legacy.seconds > 0 ? iters / legacy.seconds : 0.0;
            const double engine_ips =
                engine.seconds > 0 ? iters / engine.seconds : 0.0;
            for (const auto &[tool, ips, secs] :
                 {std::tuple<const char *, double, double>{
                      "legacy", legacy_ips, legacy.seconds},
                  {"engine", engine_ips, engine.seconds}}) {
                CaseResult row;
                row.benchmark = bench;
                row.tool = tool;
                row.metric = "iterations_per_second";
                row.value = ips;
                row.seconds = secs;
                row.trial = t;
                row.seed = seed;
                ctx.record(std::move(row));
            }

            CaseResult guard;
            guard.benchmark = bench;
            guard.tool = "engine";
            guard.metric = "engine_matches_legacy";
            guard.value = match ? 1.0 : 0.0;
            guard.trial = t;
            guard.seed = seed;
            ctx.record(std::move(guard));

            if (t == 0 || legacy_ips > best_legacy)
                best_legacy = legacy_ips;
            if (t == 0 || engine_ips > best_engine)
                best_engine = engine_ips;
            if (t == 0) {
                table.addRow({bench, "legacy", fmt("%.0f", legacy_ips),
                              "1.00x", "-"});
                table.addRow({bench, "engine", fmt("%.0f", engine_ips),
                              fmt("%.2fx", engine_ips /
                                               std::max(legacy_ips, 1e-9)),
                              match ? "yes" : "NO"});
            }
        }

        // Aggregate: best-of-trials speedup — the acceptance metric at
        // the largest size.
        CaseResult agg;
        agg.benchmark = bench;
        agg.tool = "engine";
        agg.metric = "speedup_vs_legacy";
        agg.value =
            best_legacy > 0 ? best_engine / best_legacy : 0.0;
        agg.trial = 0;
        agg.seed = ctx.opts().trialSeed(0);
        ctx.record(std::move(agg));

        if (!all_match)
            support::panic("rewrite_throughput: engine diverged from "
                           "the legacy pass");
    }

    if (ctx.pretty()) {
        table.print();
        std::printf("\nshape check: the engine replays the legacy "
                    "decision sequence gate-for-gate and the largest "
                    "size speeds up >= 5x.\n");
    }
}

const CaseRegistrar kRewriteThroughput(
    "rewrite_throughput",
    "incremental rewrite engine vs legacy pass: Metropolis loop "
    "iterations/sec",
    330, runRewriteThroughput);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
