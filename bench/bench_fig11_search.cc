/**
 * @file
 * Fig. 11 (Q3): how to combine rewriting and resynthesis — GUOQ's
 * tight random interleaving vs (1) rewrite-half-then-resynth-half,
 * (2) resynth-half-then-rewrite-half, and (3) GUOQ-BEAM (MaxBeam over
 * the same transformation set). ibmq20, 2q reduction.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "core/optimizer.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

/** Half the budget in one mode, then the rest in the other. */
ir::Circuit
sequential(CaseContext &ctx, const ir::Circuit &c, ir::GateSetKind set,
           std::uint64_t seed, core::TransformSelection first,
           core::TransformSelection second)
{
    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 4.0 / 2;
    spec.cfg.objective = core::Objective::TwoQubitCount;
    spec.cfg.selection = first;
    spec.cfg.epsilonTotal =
        first == core::TransformSelection::RewriteOnly ? 0.0 : 1e-5 / 2;
    const ir::Circuit mid = runGuoq(ctx, spec, c, seed);
    spec.cfg.selection = second;
    spec.cfg.epsilonTotal =
        second == core::TransformSelection::RewriteOnly ? 0.0
                                                        : 1e-5 / 2;
    return runGuoq(ctx, spec, mid, seed + 1);
}

void
runFig11(CaseContext &ctx)
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const double budget = ctx.budget(4.0);
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 10));

    if (ctx.pretty())
        std::printf("=== Fig. 11 (Q3): search algorithm comparison "
                    "(ibmq20, 2q reduction) ===\n\n");

    // The beam and GUOQ itself dispatch through the optimizer
    // registry — the same entry points guoq_cli --algorithm drives.
    // The two coarse sequential orders are phased composites with no
    // registry identity of their own; their rows carry the "+"-joined
    // names of the phases.
    core::OptimizeRequest beam_req;
    beam_req.set = set;
    beam_req.objective = core::Objective::TwoQubitCount;
    beam_req.epsilonTotal = 1e-5;
    beam_req.timeBudgetSeconds = budget;
    beam_req.params["beam-width"] = "64";

    std::vector<Tool> tools;
    tools.push_back(
        {"seq-rw-rs",
         [&ctx, set](const ir::Circuit &c, std::uint64_t seed) {
             return sequential(ctx, c, set, seed,
                               core::TransformSelection::RewriteOnly,
                               core::TransformSelection::ResynthOnly);
         },
         "guoq-rewrite+guoq-resynth"});
    tools.push_back(
        {"seq-rs-rw",
         [&ctx, set](const ir::Circuit &c, std::uint64_t seed) {
             return sequential(ctx, c, set, seed,
                               core::TransformSelection::ResynthOnly,
                               core::TransformSelection::RewriteOnly);
         },
         "guoq-resynth+guoq-rewrite"});
    tools.push_back(registryTool(ctx, "guoq-beam", "beam", beam_req));

    core::OptimizeRequest guoq_req;
    guoq_req.set = set;
    guoq_req.objective = core::Objective::TwoQubitCount;
    guoq_req.epsilonTotal = 1e-5;
    guoq_req.timeBudgetSeconds = budget;
    const Tool guoq = registryTool(ctx, "guoq", "guoq", guoq_req);

    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(ctx, suite, guoq, tools, cmp);

    if (ctx.pretty())
        std::printf("shape check: tight interleaving (guoq) beats both "
                    "coarse sequential orders and the beam.\n");
}

const CaseRegistrar kFig11(
    "fig11", "interleaving vs sequential vs beam (ibmq20)", 110,
    runFig11);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
