/**
 * @file
 * Fig. 11 (Q3): how to combine rewriting and resynthesis — GUOQ's
 * tight random interleaving vs (1) rewrite-half-then-resynth-half,
 * (2) resynth-half-then-rewrite-half, and (3) GUOQ-BEAM (MaxBeam over
 * the same transformation set). ibmq20, 2q reduction.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

namespace {

/** Half the budget in one mode, then the rest in the other. */
ir::Circuit
sequential(const ir::Circuit &c, ir::GateSetKind set, double budget,
           std::uint64_t seed, core::TransformSelection first,
           core::TransformSelection second)
{
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 1e-5 / 2;
    cfg.timeBudgetSeconds = budget / 2;
    cfg.seed = seed;
    cfg.objective = core::Objective::TwoQubitCount;
    cfg.selection = first;
    if (first == core::TransformSelection::RewriteOnly)
        cfg.epsilonTotal = 0;
    const ir::Circuit mid = core::optimize(c, set, cfg).best;
    cfg.selection = second;
    cfg.epsilonTotal = second == core::TransformSelection::RewriteOnly
                           ? 0.0
                           : 1e-5 / 2;
    cfg.seed = seed + 1;
    return core::optimize(mid, set, cfg).best;
}

} // namespace

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const double budget = guoqBudget(4.0);
    const auto suite = benchSuiteFor(set, suiteCap(10));

    std::printf("=== Fig. 11 (Q3): search algorithm comparison "
                "(ibmq20, 2q reduction) ===\n\n");

    const std::vector<Tool> tools{
        {"seq-rw-rs", [set, budget](const ir::Circuit &c,
                                    std::uint64_t seed) {
             return sequential(c, set, budget, seed,
                               core::TransformSelection::RewriteOnly,
                               core::TransformSelection::ResynthOnly);
         }},
        {"seq-rs-rw", [set, budget](const ir::Circuit &c,
                                    std::uint64_t seed) {
             return sequential(c, set, budget, seed,
                               core::TransformSelection::ResynthOnly,
                               core::TransformSelection::RewriteOnly);
         }},
        {"guoq-beam", [set, budget](const ir::Circuit &c,
                                    std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = core::Objective::TwoQubitCount;
             o.epsilonTotal = 1e-5;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 64;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
    };

    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(
        suite,
        [set, budget](const ir::Circuit &c, std::uint64_t seed) {
            return runGuoq(c, set, budget, seed,
                           core::Objective::TwoQubitCount);
        },
        tools, cmp);

    std::printf("shape check: tight interleaving (guoq) beats both "
                "coarse sequential orders and the beam.\n");
    return 0;
}
