/**
 * @file
 * Verification micro-benchmark: dense vs sampling equivalence checks
 * across circuit widths. Times both backends where both fit, and
 * shows the sampling backend carrying on past the dense cap — the
 * scaling the verification layer exists for. Rows: per (width,
 * backend) the distance estimate, the reported confidence bound, and
 * the wall seconds of the check.
 */

#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "sim/unitary_sim.h"
#include "support/logging.h"
#include "support/table.h"
#include "transpile/to_gate_set.h"
#include "verify/checker.h"
#include "workloads/standard.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runVerify(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== verify: dense vs sampling equivalence "
                    "checks ===\n\n");

    // Shots scale with the run budget knob so `--scale 0.02` smokes
    // stay cheap; the floor keeps the bound finite and meaningful.
    const long shots =
        std::max(32L, static_cast<long>(256 * ctx.opts().scale));

    support::TextTable table(
        {"qubits", "backend", "distance", "bound", "seconds"});
    for (const int n : {6, 8, 10, 12, 14}) {
        // A QFT pair with an appended identity (CX·CX) so the check
        // compares two different gate lists of the same unitary.
        const ir::Circuit a =
            transpile::toGateSet(workloads::qft(n), ir::GateSetKind::Nam);
        ir::Circuit b = a;
        b.cx(0, 1);
        b.cx(0, 1);

        for (const auto *checker :
             verify::CheckerRegistry::global().all()) {
            if (checker->info().name == "auto")
                continue; // the policy adds no data over its backends
            // Keep dense inside the auto-policy region: at 11-12
            // qubits it still fits the hard cap but costs minutes,
            // which is the point the sampling rows make instead.
            if (checker->info().name == "dense" &&
                n > verify::kDenseAutoMaxQubits)
                continue;
            for (int trial = 0; trial < ctx.opts().trials; ++trial) {
                verify::VerifyRequest req;
                req.shots = shots;
                req.seed = ctx.opts().trialSeed(trial);
                req.threads = ctx.opts().threads;
                if (!checker->checkRequest(a, b, req).empty())
                    continue; // dense past its cap
                const verify::VerifyReport r = checker->run(a, b, req);

                CaseResult row;
                row.benchmark = support::strcat("qft", n);
                row.tool = r.method;
                row.metric = "hs_distance_estimate";
                row.value = r.distanceEstimate;
                row.seconds = r.wallSeconds;
                row.trial = trial;
                row.seed = req.seed;
                ctx.record(row);
                row.metric = "hs_distance_bound";
                row.value = r.bound;
                ctx.record(row);

                if (trial == 0 && ctx.pretty())
                    table.addRow({std::to_string(n), r.method,
                                  support::fmt(r.distanceEstimate, 4),
                                  support::fmt(r.bound, 4),
                                  support::fmt(r.wallSeconds, 3)});
            }
        }
    }
    if (ctx.pretty()) {
        table.print();
        std::printf("\n(dense stops at %d qubits; sampling reports a "
                    "%ld-shot Hoeffding bound)\n",
                    sim::kMaxUnitaryQubits, shots);
    }
}

const CaseRegistrar kVerify(
    "verify", "dense vs sampling equivalence-check comparison", 230,
    runVerify);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
