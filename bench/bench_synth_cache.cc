/**
 * @file
 * Perf trajectory of the content-addressed synthesis cache
 * (synth::SynthService): run a resynthesis-heavy panel cold (empty
 * cache) and again warm (same service, same seeds), and record the
 * cache traffic plus output identity. The warm pass must re-search at
 * least 2x fewer subcircuits and reproduce the cold pass's circuits
 * exactly — the PR-006 acceptance criterion, measured here as the
 * `synthcache` case of guoq-bench-v1 (BENCH_006.json).
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "support/table.h"
#include "synth/service.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"
#include "workloads/variational.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

std::vector<workloads::Benchmark>
resynthPanel(ir::GateSetKind set)
{
    std::vector<workloads::Benchmark> out;
    out.push_back({"barenco_tof_4", "tof",
                   transpile::toGateSet(workloads::barencoTof(4), set)});
    out.push_back({"qaoa_6", "qaoa",
                   transpile::toGateSet(workloads::qaoaMaxCut(6, 2, 11),
                                        set)});
    out.push_back({"qft_5", "qft",
                   transpile::toGateSet(workloads::qft(5), set)});
    return out;
}

void
runSynthCache(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Synthesis cache: cold vs warm passes over a "
                    "resynthesis-heavy panel ===\n\n");

    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const auto circuits = resynthPanel(set);

    // Strictly iteration-capped runs: the wall budget must never bind
    // or the faster warm pass would run further and diverge — the
    // passes must differ only in cache temperature.
    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 1e6;
    spec.cfg.epsilonTotal = 1e-5;
    spec.cfg.maxIterations = 600;
    spec.cfg.resynthProbability = 0.05;
    spec.cfg.resynthCallSeconds = 5.0;

    support::TextTable table({"benchmark", "pass", "2q out", "hits",
                              "misses", "identical"});
    long cold_misses = 0, warm_misses = 0, warm_hits = 0;

    for (int t = 0; t < ctx.opts().trials; ++t) {
        const std::uint64_t seed = ctx.opts().trialSeed(t);
        // One isolated service per trial so the case never leaks
        // state into (or reads state from) other bench cases.
        synth::SynthService service;
        service.enableCache(true);
        spec.cfg.synthService = &service;

        std::vector<std::string> cold_outputs(circuits.size());
        for (int pass = 0; pass < 2; ++pass) {
            const bool warm = pass == 1;
            for (std::size_t i = 0; i < circuits.size(); ++i) {
                const auto &b = circuits[i];
                const core::PortfolioResult r =
                    runGuoqPortfolio(ctx, spec, b.circuit, seed);
                const SynthCacheTally tally = ctx.takeSynthStats();
                const std::string out_text = r.best.toString();
                const bool identical =
                    warm && out_text == cold_outputs[i];
                if (!warm)
                    cold_outputs[i] = out_text;

                CaseResult row;
                row.benchmark = b.name;
                row.tool = warm ? "warm" : "cold";
                row.metric = warm ? "warm_identical" : "final_2q";
                row.value = warm ? (identical ? 1.0 : 0.0)
                                 : static_cast<double>(
                                       r.best.twoQubitGateCount());
                row.trial = t;
                row.seed = seed;
                row.workerSeconds = ctx.takeWorkerSeconds();
                row.synthCacheHits = tally.hits;
                row.synthCacheMisses = tally.misses;
                row.synthCacheStores = tally.stores;
                ctx.record(std::move(row));

                if (warm) {
                    warm_misses += tally.misses;
                    warm_hits += tally.hits;
                } else {
                    cold_misses += tally.misses;
                }
                if (t == 0)
                    table.addRow(
                        {b.name, warm ? "warm" : "cold",
                         std::to_string(r.best.twoQubitGateCount()),
                         std::to_string(tally.hits),
                         std::to_string(tally.misses),
                         warm ? (identical ? "yes" : "NO") : "-"});
            }
        }
        spec.cfg.synthService = nullptr;
    }

    // Aggregate rows: the acceptance metric (>= 2x fewer searches
    // warm) in machine-readable form.
    CaseResult agg;
    agg.benchmark = "*";
    agg.tool = "warm";
    agg.metric = "search_reduction";
    agg.value = warm_misses > 0 ? static_cast<double>(cold_misses) /
                                      static_cast<double>(warm_misses)
                                : static_cast<double>(cold_misses);
    agg.trial = 0;
    agg.seed = ctx.opts().trialSeed(0);
    agg.synthCacheHits = warm_hits;
    agg.synthCacheMisses = warm_misses;
    ctx.record(std::move(agg));

    if (ctx.pretty()) {
        table.print();
        std::printf("\ncold misses %ld, warm hits %ld, warm misses "
                    "%ld\nshape check: warm passes replay cold "
                    "searches from the cache (>= 2x fewer misses) and "
                    "reproduce the cold outputs exactly.\n",
                    cold_misses, warm_hits, warm_misses);
    }
}

const CaseRegistrar kSynthCache("synthcache",
                                "content-addressed synthesis cache: "
                                "cold vs warm passes",
                                310, runSynthCache);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
