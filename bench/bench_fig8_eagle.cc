/**
 * @file
 * Fig. 8: GUOQ vs Qiskit / tket / BQSKit / Quartz / Quarl stand-ins on
 * the ibm-eagle gate set — both metrics of the figure as separate
 * cases: 2-qubit-gate reduction (top row, "fig8/2q") and circuit
 * fidelity (bottom row, "fig8/fidelity").
 */

#include <cstdio>

#include "baselines/beam_search.h"
#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "baselines/rl_like.h"
#include "bench/harness.h"
#include "bench/registry.h"
#include "fidelity/error_model.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

std::vector<Tool>
eagleTools(ir::GateSetKind set, core::Objective obj, double budget)
{
    return {
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"tket", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::tketLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"quartz", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = obj;
             o.epsilonTotal = 0;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 128;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
        {"quarl", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::RlLikeOptions o;
             o.objective = obj;
             o.timeBudgetSeconds = budget;
             o.seed = seed;
             return baselines::rlLikeOptimize(c, set, o);
         }},
    };
}

void
runFig8(CaseContext &ctx, const Comparison &cmp, const char *header)
{
    const ir::GateSetKind set = ir::GateSetKind::IbmEagle;
    const double budget = ctx.budget(3.0);
    const core::Objective obj = core::Objective::TwoQubitCount;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    if (ctx.pretty())
        std::printf("=== %s ===\n\n", header);

    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 3.0;
    spec.cfg.epsilonTotal = 1e-5;
    spec.cfg.objective = obj;
    const Tool guoq{"guoq",
                    [&ctx, spec](const ir::Circuit &c, std::uint64_t seed) {
                        return runGuoq(ctx, spec, c, seed);
                    }};

    runComparison(ctx, suite, guoq, eagleTools(set, obj, budget), cmp);
}

void
runFig8TwoQubit(CaseContext &ctx)
{
    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runFig8(ctx, cmp, "Fig. 8 (top): 2q gate reduction, ibm-eagle");
}

void
runFig8Fidelity(CaseContext &ctx)
{
    const fidelity::ErrorModel &model =
        fidelity::errorModelFor(ir::GateSetKind::IbmEagle);
    Comparison cmp;
    cmp.metricName = "fidelity";
    cmp.metricKey = "fidelity";
    cmp.metric = [&model](const ir::Circuit &, const ir::Circuit &after) {
        return model.circuitFidelity(after);
    };
    runFig8(ctx, cmp, "Fig. 8 (bottom): circuit fidelity, ibm-eagle");
}

const CaseRegistrar kFig8TwoQubit(
    "fig8/2q", "GUOQ vs tools, ibm-eagle 2q reduction", 80,
    runFig8TwoQubit);
const CaseRegistrar kFig8Fidelity(
    "fig8/fidelity", "GUOQ vs tools, ibm-eagle circuit fidelity", 81,
    runFig8Fidelity);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
