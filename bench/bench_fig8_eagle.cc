/**
 * @file
 * Fig. 8: GUOQ vs Qiskit / tket / BQSKit / Quartz / Quarl stand-ins on
 * the ibm-eagle gate set — both metrics of the figure: 2-qubit-gate
 * reduction (top row) and circuit fidelity (bottom row).
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::IbmEagle;
    const double budget = guoqBudget(3.0);
    const core::Objective obj = core::Objective::TwoQubitCount;
    const auto suite = benchSuiteFor(set, suiteCap(12));
    const fidelity::ErrorModel &model = fidelity::errorModelFor(set);

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"tket", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::tketLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"quartz", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = obj;
             o.epsilonTotal = 0;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 128;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
        {"quarl", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::RlLikeOptions o;
             o.objective = obj;
             o.timeBudgetSeconds = budget;
             o.seed = seed;
             return baselines::rlLikeOptimize(c, set, o);
         }},
    };

    auto guoq_run = [set, obj, budget](const ir::Circuit &c,
                                       std::uint64_t seed) {
        return runGuoq(c, set, budget, seed, obj);
    };

    std::printf("=== Fig. 8 (top): 2q gate reduction, ibm-eagle ===\n\n");
    Comparison twoq;
    twoq.metricName = "2q gate reduction";
    twoq.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(suite, guoq_run, tools, twoq);

    std::printf("=== Fig. 8 (bottom): circuit fidelity, ibm-eagle ===\n\n");
    Comparison fid;
    fid.metricName = "fidelity";
    fid.metric = [&model](const ir::Circuit &, const ir::Circuit &after) {
        return model.circuitFidelity(after);
    };
    runComparison(suite, guoq_run, tools, fid);
    return 0;
}
