/**
 * @file
 * Table 1: characteristics of rewrite rules vs resynthesis — measured
 * rather than asserted. Reports per-transformation latency (fast vs
 * slow), the size limits each is subject to (gates vs qubits), and
 * whether each can approximate.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "support/timer.h"
#include "synth/resynth.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

using namespace guoq;

int
main()
{
    std::printf("=== Table 1: rewrite rules vs resynthesis ===\n\n");

    const ir::GateSetKind set = ir::GateSetKind::Nam;
    const ir::Circuit circuit =
        transpile::toGateSet(workloads::qft(8), set);
    const auto &rules = rewrite::rulesFor(set);
    support::Rng rng(support::benchSeed());

    // Fast path latency: full rule passes over a 100+ gate circuit.
    support::Timer t1;
    const int passes = 5000;
    for (int i = 0; i < passes; ++i)
        rewrite::applyRulePassRandom(circuit, rules[rng.index(rules.size())],
                                     rng);
    const double rewrite_us = t1.seconds() / passes * 1e6;

    // Slow path latency: resynthesis of 2- and 3-qubit subcircuits.
    double resynth_ms_2q = 0, resynth_ms_3q = 0;
    {
        ir::Circuit sub2(2);
        sub2.cx(0, 1);
        sub2.rz(0.3, 1);
        sub2.cx(0, 1);
        sub2.cx(1, 0);
        sub2.rz(0.4, 0);
        sub2.cx(1, 0);
        synth::ResynthOptions o;
        o.targetSet = set;
        o.epsilon = 1e-6;
        o.deadline = support::Deadline::in(30);
        support::Timer t2;
        synth::resynthesize(sub2, o, rng);
        resynth_ms_2q = t2.seconds() * 1e3;

        ir::Circuit sub3(3);
        sub3.cx(0, 1);
        sub3.rz(0.5, 1);
        sub3.cx(0, 1);
        sub3.cx(1, 2);
        sub3.rz(0.7, 2);
        sub3.cx(1, 2);
        support::Timer t3;
        synth::resynthesize(sub3, o, rng);
        resynth_ms_3q = t3.seconds() * 1e3;
    }

    support::TextTable table(
        {"characteristic", "rewrite rules", "resynthesis"});
    table.addRow({"measured latency",
                  support::fmt(rewrite_us, 1) + " us/pass",
                  support::fmt(resynth_ms_2q, 0) + " ms (2q) / " +
                      support::fmt(resynth_ms_3q, 0) + " ms (3q)"});
    table.addRow({"fast", "yes", "no"});
    table.addRow({"limited by # gates", "yes (<= 5-gate patterns)",
                  "no (whole subcircuit unitary)"});
    table.addRow({"limited by # qubits", "no",
                  "yes (2^n x 2^n unitary, n <= 3)"});
    table.addRow({"approximate", "no (eps = 0 exact)",
                  "yes (any eps > 0)"});
    table.print();

    std::printf("\nshape check: rewrite pass is %.0fx faster than one "
                "2q resynthesis call\n",
                resynth_ms_2q * 1e3 / rewrite_us);
    return 0;
}
