/**
 * @file
 * Table 1: characteristics of rewrite rules vs resynthesis — measured
 * rather than asserted. Records per-transformation latency (fast vs
 * slow), the size limits each is subject to (gates vs qubits), and
 * whether each can approximate.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"
#include "synth/resynth.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runTable1(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Table 1: rewrite rules vs resynthesis ===\n\n");

    const ir::GateSetKind set = ir::GateSetKind::Nam;
    const ir::Circuit circuit =
        transpile::toGateSet(workloads::qft(8), set);
    const auto &rules = rewrite::rulesFor(set);

    // The pretty table shows trial 0, matching the legacy single run.
    double rewrite_us = 0, resynth_ms_2q = 0, resynth_ms_3q = 0;
    for (int trial = 0; trial < ctx.opts().trials; ++trial) {
        const std::uint64_t seed = ctx.opts().trialSeed(trial);
        support::Rng rng(seed);

        // Fast path latency: full rule passes over a 100+ gate
        // circuit.
        support::Timer t1;
        const int passes = 5000;
        for (int i = 0; i < passes; ++i)
            rewrite::applyRulePassRandom(
                circuit, rules[rng.index(rules.size())], rng);
        const double trial_rewrite_us = t1.seconds() / passes * 1e6;

        // Slow path latency: resynthesis of 2- and 3-qubit
        // subcircuits.
        double trial_ms_2q = 0, trial_ms_3q = 0;
        {
            ir::Circuit sub2(2);
            sub2.cx(0, 1);
            sub2.rz(0.3, 1);
            sub2.cx(0, 1);
            sub2.cx(1, 0);
            sub2.rz(0.4, 0);
            sub2.cx(1, 0);
            synth::ResynthOptions o;
            o.targetSet = set;
            o.epsilon = 1e-6;
            o.deadline = support::Deadline::in(30);
            support::Timer t2;
            synth::resynthesize(sub2, o, rng);
            trial_ms_2q = t2.seconds() * 1e3;

            ir::Circuit sub3(3);
            sub3.cx(0, 1);
            sub3.rz(0.5, 1);
            sub3.cx(0, 1);
            sub3.cx(1, 2);
            sub3.rz(0.7, 2);
            sub3.cx(1, 2);
            support::Timer t3;
            synth::resynthesize(sub3, o, rng);
            trial_ms_3q = t3.seconds() * 1e3;
        }

        auto latency = [&ctx, trial, seed](const std::string &tool,
                                           const std::string &metric,
                                           double value) {
            CaseResult row;
            row.benchmark = "qft_8";
            row.tool = tool;
            row.metric = metric;
            row.value = value;
            row.trial = trial;
            row.seed = seed;
            ctx.record(std::move(row));
        };
        latency("rewrite", "pass_us", trial_rewrite_us);
        latency("resynth", "call_ms_2q", trial_ms_2q);
        latency("resynth", "call_ms_3q", trial_ms_3q);
        if (trial == 0) {
            rewrite_us = trial_rewrite_us;
            resynth_ms_2q = trial_ms_2q;
            resynth_ms_3q = trial_ms_3q;
        }
    }

    if (!ctx.pretty())
        return;
    support::TextTable table(
        {"characteristic", "rewrite rules", "resynthesis"});
    table.addRow({"measured latency",
                  support::fmt(rewrite_us, 1) + " us/pass",
                  support::fmt(resynth_ms_2q, 0) + " ms (2q) / " +
                      support::fmt(resynth_ms_3q, 0) + " ms (3q)"});
    table.addRow({"fast", "yes", "no"});
    table.addRow({"limited by # gates", "yes (<= 5-gate patterns)",
                  "no (whole subcircuit unitary)"});
    table.addRow({"limited by # qubits", "no",
                  "yes (2^n x 2^n unitary, n <= 3)"});
    table.addRow({"approximate", "no (eps = 0 exact)",
                  "yes (any eps > 0)"});
    table.print();

    std::printf("\nshape check: rewrite pass is %.0fx faster than one "
                "2q resynthesis call\n",
                resynth_ms_2q * 1e3 / rewrite_us);
}

const CaseRegistrar kTable1(
    "table1", "measured rewrite vs resynthesis characteristics", 200,
    runTable1);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
