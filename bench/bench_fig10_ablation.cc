/**
 * @file
 * Fig. 10 (Q2): the effect of unifying rewriting and resynthesis —
 * GUOQ with both transformation classes vs GUOQ-REWRITE (rules only)
 * vs GUOQ-RESYNTH (resynthesis only), ibmq20, 2q reduction.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig10(CaseContext &ctx)
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const core::Objective obj = core::Objective::TwoQubitCount;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    if (ctx.pretty())
        std::printf("=== Fig. 10 (Q2): combined vs rewrite-only vs "
                    "resynth-only (ibmq20, 2q reduction) ===\n\n");

    auto variant = [&ctx, set, obj](core::TransformSelection selection) {
        GuoqSpec spec;
        spec.set = set;
        spec.baseBudgetSeconds = 4.0;
        spec.cfg.epsilonTotal = 1e-5;
        spec.cfg.objective = obj;
        spec.cfg.selection = selection;
        return [&ctx, spec](const ir::Circuit &c, std::uint64_t seed) {
            return runGuoq(ctx, spec, c, seed);
        };
    };

    const std::vector<Tool> tools{
        {"guoq-rewrite",
         variant(core::TransformSelection::RewriteOnly)},
        {"guoq-resynth",
         variant(core::TransformSelection::ResynthOnly)},
    };
    const Tool guoq{"guoq", variant(core::TransformSelection::Combined)};

    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(ctx, suite, guoq, tools, cmp);

    if (ctx.pretty())
        std::printf("shape check: combined >= max(rewrite-only, "
                    "resynth-only) on most benchmarks.\n");
}

const CaseRegistrar kFig10(
    "fig10", "combined vs rewrite-only vs resynth-only (ibmq20)", 100,
    runFig10);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
