/**
 * @file
 * Fig. 10 (Q2): the effect of unifying rewriting and resynthesis —
 * GUOQ with both transformation classes vs GUOQ-REWRITE (rules only)
 * vs GUOQ-RESYNTH (resynthesis only), ibmq20, 2q reduction.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const double budget = guoqBudget(4.0);
    const core::Objective obj = core::Objective::TwoQubitCount;
    const auto suite = benchSuiteFor(set, suiteCap(12));

    std::printf("=== Fig. 10 (Q2): combined vs rewrite-only vs "
                "resynth-only (ibmq20, 2q reduction) ===\n\n");

    const std::vector<Tool> tools{
        {"guoq-rewrite", [set, obj, budget](const ir::Circuit &c,
                                            std::uint64_t seed) {
             return runGuoq(c, set, budget, seed, obj,
                            core::TransformSelection::RewriteOnly);
         }},
        {"guoq-resynth", [set, obj, budget](const ir::Circuit &c,
                                            std::uint64_t seed) {
             return runGuoq(c, set, budget, seed, obj,
                            core::TransformSelection::ResynthOnly);
         }},
    };

    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(
        suite,
        [set, obj, budget](const ir::Circuit &c, std::uint64_t seed) {
            return runGuoq(c, set, budget, seed, obj);
        },
        tools, cmp);

    std::printf("shape check: combined >= max(rewrite-only, "
                "resynth-only) on most benchmarks.\n");
    return 0;
}
