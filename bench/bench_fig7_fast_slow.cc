/**
 * @file
 * Fig. 7: best-so-far 2q gate count over time for (1) rewrite rules
 * only, (2) resynthesis only, and (3) both combined, on the
 * barenco_tof and qft families — the motivating example of the
 * fast/slow synergy. Prints the three time series per circuit.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

using namespace guoq;
using namespace guoq::bench;

namespace {

void
runSeries(const char *name, const ir::Circuit &c, ir::GateSetKind set,
          double budget)
{
    struct Mode
    {
        const char *label;
        core::TransformSelection selection;
    };
    const Mode modes[] = {
        {"combined", core::TransformSelection::Combined},
        {"rewrite-only", core::TransformSelection::RewriteOnly},
        {"resynth-only", core::TransformSelection::ResynthOnly},
    };

    std::printf("--- %s (%zu gates, %zu 2q) ---\n", name, c.size(),
                c.twoQubitGateCount());
    for (const Mode &mode : modes) {
        core::GuoqConfig cfg;
        cfg.epsilonTotal = 1e-5;
        cfg.timeBudgetSeconds = budget;
        cfg.seed = support::benchSeed();
        cfg.selection = mode.selection;
        cfg.recordTrace = true;
        const core::GuoqResult r = core::optimize(c, set, cfg);
        std::printf("%-13s:", mode.label);
        for (const core::TracePoint &p : r.trace)
            std::printf(" %.1fs:%zu", p.seconds, p.twoQubitCount);
        std::printf("  (final %zu)\n", r.best.twoQubitGateCount());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Fig. 7: fast vs slow vs combined (best-so-far 2q "
                "count over time) ===\n\n");
    const double budget = guoqBudget(8.0);

    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    runSeries("barenco_tof_4",
              transpile::toGateSet(workloads::barencoTof(4), set), set,
              budget);
    runSeries("qft_6", transpile::toGateSet(workloads::qft(6), set), set,
              budget);
    std::printf("shape check: rewrite-only plateaus early; "
                "resynth-only moves slowly; combined reaches the "
                "lowest count.\n");
    return 0;
}
