/**
 * @file
 * Fig. 7: best-so-far 2q gate count over time for (1) rewrite rules
 * only, (2) resynthesis only, and (3) both combined, on the
 * barenco_tof and qft families — the motivating example of the
 * fast/slow synergy. Records the three time series per circuit (trace
 * points come from the single-thread portfolio path; a multi-thread
 * run has no single trajectory and records finals only).
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runSeries(CaseContext &ctx, const char *name, const ir::Circuit &c,
          ir::GateSetKind set)
{
    struct Mode
    {
        const char *label;
        core::TransformSelection selection;
    };
    const Mode modes[] = {
        {"combined", core::TransformSelection::Combined},
        {"rewrite-only", core::TransformSelection::RewriteOnly},
        {"resynth-only", core::TransformSelection::ResynthOnly},
    };

    if (ctx.pretty())
        std::printf("--- %s (%zu gates, %zu 2q) ---\n", name, c.size(),
                    c.twoQubitGateCount());
    for (const Mode &mode : modes) {
        GuoqSpec spec;
        spec.set = set;
        spec.baseBudgetSeconds = 8.0;
        spec.cfg.epsilonTotal = 1e-5;
        spec.cfg.selection = mode.selection;
        spec.cfg.recordTrace = true;
        for (int t = 0; t < ctx.opts().trials; ++t) {
            const std::uint64_t seed = ctx.opts().trialSeed(t);
            const core::PortfolioResult r =
                runGuoqPortfolio(ctx, spec, c, seed);
            if (ctx.pretty() && t == 0) {
                std::printf("%-13s:", mode.label);
                for (const core::TracePoint &p : r.trace)
                    std::printf(" %.1fs:%zu", p.seconds,
                                p.twoQubitCount);
                std::printf("  (final %zu)\n",
                            r.best.twoQubitGateCount());
            }
            for (const core::TracePoint &p : r.trace) {
                CaseResult row;
                row.benchmark = name;
                row.tool = mode.label;
                row.metric = "best_2q";
                row.value = static_cast<double>(p.twoQubitCount);
                row.seconds = p.seconds;
                row.trial = t;
                row.seed = seed;
                ctx.record(std::move(row));
            }
            CaseResult final_row;
            final_row.benchmark = name;
            final_row.tool = mode.label;
            final_row.metric = "final_2q";
            final_row.value =
                static_cast<double>(r.best.twoQubitGateCount());
            final_row.seconds = r.stats.seconds;
            final_row.trial = t;
            final_row.seed = seed;
            final_row.workerSeconds = ctx.takeWorkerSeconds();
            ctx.record(std::move(final_row));
        }
    }
    if (ctx.pretty())
        std::printf("\n");
}

void
runFig7(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Fig. 7: fast vs slow vs combined (best-so-far "
                    "2q count over time) ===\n\n");
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    runSeries(ctx, "barenco_tof_4",
              transpile::toGateSet(workloads::barencoTof(4), set), set);
    runSeries(ctx, "qft_6",
              transpile::toGateSet(workloads::qft(6), set), set);
    if (ctx.pretty())
        std::printf("shape check: rewrite-only plateaus early; "
                    "resynth-only moves slowly; combined reaches the "
                    "lowest count.\n");
}

const CaseRegistrar kFig7(
    "fig7", "fast vs slow vs combined, best-so-far 2q over time", 70,
    runFig7);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
