/**
 * @file
 * Shared harness pieces for the per-figure benchmark binaries: tool
 * runners, reduction metrics, the better/match/worse bar summaries of
 * the paper's plots, and budget scaling via GUOQ_BENCH_SCALE.
 *
 * The paper gives every tool 1 CPU-hour per circuit; these harnesses
 * default to seconds-scale budgets so a full regeneration finishes in
 * minutes. Set GUOQ_BENCH_SCALE=N to multiply every search budget.
 */

#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <functional>
#include <string>
#include <vector>

#include "baselines/beam_search.h"
#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "baselines/phase_poly.h"
#include "baselines/rl_like.h"
#include "core/guoq.h"
#include "fidelity/error_model.h"
#include "support/options.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/suite.h"

namespace guoq {
namespace bench {

/** A tool entry: name plus a circuit optimizer closure. */
struct Tool
{
    std::string name;
    std::function<ir::Circuit(const ir::Circuit &, std::uint64_t seed)>
        run;
};

/** 1 - after/before (the paper's gate-reduction metric). */
inline double
reduction(std::size_t before, std::size_t after)
{
    if (before == 0)
        return 0;
    return 1.0 - static_cast<double>(after) /
                     static_cast<double>(before);
}

/** GUOQ with the benchmark-standard configuration. */
inline ir::Circuit
runGuoq(const ir::Circuit &c, ir::GateSetKind set, double seconds,
        std::uint64_t seed, core::Objective objective,
        core::TransformSelection selection =
            core::TransformSelection::Combined,
        double epsilon = 1e-5)
{
    core::GuoqConfig cfg;
    cfg.epsilonTotal = epsilon;
    cfg.timeBudgetSeconds = seconds;
    cfg.seed = seed;
    cfg.objective = objective;
    cfg.selection = selection;
    return core::optimize(c, set, cfg).best;
}

/** The default per-circuit GUOQ budget (seconds), after scaling. */
inline double
guoqBudget(double base = 4.0)
{
    return base * support::benchScale();
}

/**
 * Head-to-head comparison on a suite: runs GUOQ and each tool on every
 * benchmark, prints the per-benchmark table plus the paper-style
 * better/match/worse bar per tool. @p metric maps a circuit to the
 * quantity being maximized (e.g. 2q reduction vs the original).
 */
struct Comparison
{
    std::string metricName;
    std::function<double(const ir::Circuit &before,
                         const ir::Circuit &after)>
        metric;
};

inline void
runComparison(const std::vector<workloads::Benchmark> &suite,
              const std::function<ir::Circuit(const ir::Circuit &,
                                              std::uint64_t)> &guoq_run,
              const std::vector<Tool> &tools, const Comparison &cmp)
{
    std::vector<std::string> headers{"benchmark", "gates", "guoq"};
    for (const Tool &t : tools)
        headers.push_back(t.name);
    support::TextTable table(std::move(headers));

    std::vector<support::CompareCounts> counts(tools.size());
    std::vector<double> guoq_sum(1, 0.0);
    std::vector<double> tool_sum(tools.size(), 0.0);

    const std::uint64_t seed = support::benchSeed();
    for (const workloads::Benchmark &b : suite) {
        const ir::Circuit guoq_out = guoq_run(b.circuit, seed);
        const double guoq_metric = cmp.metric(b.circuit, guoq_out);
        guoq_sum[0] += guoq_metric;
        std::vector<std::string> row{
            b.name, std::to_string(b.circuit.size()),
            support::fmtPct(guoq_metric)};
        for (std::size_t t = 0; t < tools.size(); ++t) {
            const ir::Circuit out = tools[t].run(b.circuit, seed);
            const double m = cmp.metric(b.circuit, out);
            tool_sum[t] += m;
            counts[t].add(support::compareMeans(guoq_metric, m, 1e-6));
            row.push_back(support::fmtPct(m));
        }
        table.addRow(std::move(row));
    }
    table.print();

    const double n = static_cast<double>(suite.size());
    std::printf("\n%s, GUOQ vs each tool "
                "(better/match/worse out of %zu):\n",
                cmp.metricName.c_str(), suite.size());
    for (std::size_t t = 0; t < tools.size(); ++t) {
        std::printf("  %-14s %3d / %3d / %3d   "
                    "(avg: guoq %s vs %s)\n",
                    tools[t].name.c_str(), counts[t].better,
                    counts[t].match, counts[t].worse,
                    support::fmtPct(guoq_sum[0] / n).c_str(),
                    support::fmtPct(tool_sum[t] / n).c_str());
    }
    std::printf("\n");
}

/** Suite size used by the harnesses (scaled down for quick runs). */
inline int
suiteCap(int base)
{
    const double scale = support::benchScale();
    if (scale >= 4)
        return 1 << 20; // full suite
    return base;
}

/**
 * The harness suite: suiteFor(@p set) filtered to circuits with
 * enough gates to have optimization slack (tiny GHZ-scale circuits
 * only produce ties), family-diverse, capped at @p cap entries.
 */
inline std::vector<workloads::Benchmark>
benchSuiteFor(ir::GateSetKind set, int cap,
              std::size_t min_gates = 30)
{
    std::vector<workloads::Benchmark> full = workloads::suiteFor(set);
    std::vector<workloads::Benchmark> sized;
    for (workloads::Benchmark &b : full)
        if (b.circuit.size() >= min_gates)
            sized.push_back(std::move(b));
    std::stable_sort(sized.begin(), sized.end(),
                     [](const workloads::Benchmark &a,
                        const workloads::Benchmark &b) {
                         return a.circuit.size() < b.circuit.size();
                     });
    // Family round-robin so a truncated panel stays diverse; each
    // benchmark is taken at most once.
    std::vector<bool> used(sized.size(), false);
    std::vector<workloads::Benchmark> out;
    bool any = true;
    while (any && static_cast<int>(out.size()) < cap) {
        any = false;
        std::set<std::string> this_round;
        for (std::size_t i = 0;
             i < sized.size() && static_cast<int>(out.size()) < cap;
             ++i) {
            if (used[i] || this_round.count(sized[i].family))
                continue;
            used[i] = true;
            this_round.insert(sized[i].family);
            out.push_back(sized[i]);
            any = true;
        }
    }
    return out;
}

} // namespace bench
} // namespace guoq
