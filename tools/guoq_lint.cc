/**
 * @file
 * guoq_lint — the repo-specific static checker. Scans src/ tools/
 * bench/ under the given repo root (default: the current directory)
 * with the rules in src/lint/lint.h and prints findings as
 * `file:line: [rule] message`, one per line. Exits 0 on a clean tree,
 * 1 when any rule fires, 2 on usage errors or an unreadable tree.
 *
 *     guoq_lint [--list-rules] [repo-root]
 */

#include <cstdio>
#include <string>

#include "lint/lint.h"

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to, "usage: guoq_lint [--list-rules] [repo-root]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool listRules = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "guoq_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            root = arg;
        }
    }

    if (listRules) {
        for (const guoq::lint::RuleInfo &r : guoq::lint::ruleCatalog())
            std::printf("%-12s %s\n", r.name.c_str(),
                        r.summary.c_str());
        return 0;
    }

    std::string err;
    const std::vector<guoq::lint::Finding> findings =
        guoq::lint::lintTree(root, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "guoq_lint: %s\n", err.c_str());
        return 2;
    }
    for (const guoq::lint::Finding &f : findings)
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    if (!findings.empty()) {
        std::fprintf(stderr, "guoq_lint: %zu finding(s)\n",
                     findings.size());
        return 1;
    }
    return 0;
}
