/**
 * @file
 * Unified benchmark runner: one process regenerates any subset of the
 * paper's figure/table cases through the portfolio-backed harness and
 * emits machine-readable results.
 *
 *   guoq_bench --list
 *   guoq_bench --filter fig7 --scale 0.05 --trials 1 --out out.json
 *   guoq_bench --filter fig1 --filter table2 \
 *              --threads 4 --out bench.json --out bench.csv
 *
 * Defaults come from GUOQ_BENCH_{SCALE,TRIALS,SEED,THREADS}; flags
 * override. `--out` emits JSON (or CSV for *.csv paths); the pretty
 * paper-style tables still go to stdout unless --quiet.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/emit.h"
#include "bench/harness.h"
#include "bench/registry.h"
#include "support/timer.h"

namespace {

using namespace guoq;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Run the paper's benchmark cases through the portfolio-backed\n"
        "harness and emit structured results.\n"
        "\n"
        "options:\n"
        "  --list           list the registered cases and exit\n"
        "  --filter STR     run only matching cases: exact id or\n"
        "                   leading path component ('fig12' selects\n"
        "                   fig12/t and fig12/2q but not fig1);\n"
        "                   substring fallback when neither matches\n"
        "                   (repeatable; default: every case)\n"
        "  --scale X        multiply every search budget (default\n"
        "                   GUOQ_BENCH_SCALE or 1.0)\n"
        "  --trials N       trials per experiment cell (default\n"
        "                   GUOQ_BENCH_TRIALS or 1)\n"
        "  --seed S         base RNG seed; trial t uses S + t (default\n"
        "                   GUOQ_BENCH_SEED or 12345)\n"
        "  --threads N      portfolio workers per GUOQ invocation\n"
        "                   (default GUOQ_BENCH_THREADS or 1; 1 is\n"
        "                   bit-for-bit the serial optimizer)\n"
        "  --out FILE       write results to FILE: *.csv emits CSV,\n"
        "                   anything else JSON (repeatable; '-' writes\n"
        "                   JSON to stdout and implies --quiet)\n"
        "  --quiet          suppress the pretty tables on stdout\n"
        "  -h, --help       show this message\n",
        argv0);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "guoq_bench: %s\n", msg.c_str());
    std::exit(2);
}

/** Strict numeric parses: reject trailing garbage instead of
 *  silently reading "abc" as 0 (mirrors support::envDouble). */
double
parseDouble(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0' || v.empty())
        die(flag + " expects a number, got '" + v + "'");
    return x;
}

long
parseLong(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const long x = std::strtol(v.c_str(), &end, 10);
    if (!end || *end != '\0' || v.empty())
        die(flag + " expects an integer, got '" + v + "'");
    return x;
}

std::uint64_t
parseSeed(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    // strtoull silently wraps "-3" to 2^64-3; reject the sign upfront.
    if (!end || *end != '\0' || v.empty() || v[0] == '-')
        die(flag + " expects an unsigned integer, got '" + v + "'");
    return static_cast<std::uint64_t>(x);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::RunOptions opts = bench::RunOptions::fromEnv();
    std::vector<std::string> filters;
    std::vector<std::string> outs;
    bool list = false;
    bool quiet = false;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            die(std::string(argv[i]) + " expects a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--filter") {
            filters.push_back(value(i));
        } else if (arg == "--scale") {
            opts.scale = parseDouble(arg, value(i));
            // Same clamp rationale as GUOQ_BENCH_SCALE: a zero scale
            // would zero every search budget and silently report 0%.
            if (!(opts.scale >= 1e-3) || opts.scale > 1e6)
                die("--scale must be in [1e-3, 1e6]");
        } else if (arg == "--trials") {
            const long n = parseLong(arg, value(i));
            if (n < 1 || n > 1000)
                die("--trials must be in [1, 1000]");
            opts.trials = static_cast<int>(n);
        } else if (arg == "--seed") {
            opts.seed = parseSeed(arg, value(i));
        } else if (arg == "--threads") {
            const long n = parseLong(arg, value(i));
            if (n < 1 || n > 1024)
                die("--threads must be in [1, 1024]");
            opts.threads = static_cast<int>(n);
        } else if (arg == "--out") {
            outs.push_back(value(i));
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0]);
            die("unknown argument '" + arg + "'");
        }
    }

    const std::vector<const bench::BenchCase *> cases =
        bench::Registry::instance().matching(filters);

    if (list) {
        for (const bench::BenchCase *c : cases)
            std::printf("%-22s %s\n", c->id.c_str(), c->title.c_str());
        return 0;
    }
    if (cases.empty())
        die("no cases match the given --filter(s); "
            "try --list to see what is registered");

    for (const std::string &out : outs)
        if (out == "-")
            quiet = true; // keep the stdout JSON stream parseable
    opts.pretty = !quiet;

    support::Timer timer;
    const std::vector<bench::CaseResult> results =
        bench::runCases(cases, opts);

    bench::RunMeta meta;
    meta.scale = opts.scale;
    meta.trials = opts.trials;
    meta.seed = opts.seed;
    meta.threads = opts.threads;
    for (const bench::BenchCase *c : cases)
        meta.cases.push_back(c->id);

    for (const std::string &out : outs) {
        const bool csv =
            out.size() >= 4 && out.compare(out.size() - 4, 4, ".csv") == 0;
        const std::string payload = csv ? bench::toCsv(results)
                                        : bench::toJson(meta, results);
        if (out == "-") {
            std::fputs(payload.c_str(), stdout);
            continue;
        }
        std::ofstream file(out, std::ios::binary);
        if (!file)
            die("cannot open '" + out + "' for writing");
        file << payload;
        // Flush before checking: a buffered write failure (full disk)
        // only surfaces once the stream drains.
        file.close();
        if (!file.good())
            die("short write to '" + out + "'");
    }

    std::fprintf(stderr,
                 "guoq_bench: %zu case(s), %zu result row(s), %.1fs "
                 "wall (scale %g, %d trial(s), seed %llu, %d "
                 "thread(s))\n",
                 cases.size(), results.size(), timer.seconds(),
                 opts.scale, opts.trials,
                 static_cast<unsigned long long>(opts.seed),
                 opts.threads);
    return 0;
}
