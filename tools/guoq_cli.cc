/**
 * @file
 * Command-line driver: OpenQASM 2.0 in, optimized OpenQASM 2.0 out.
 *
 *   guoq_cli --in circuit.qasm --out optimized.qasm \
 *            --gate-set nam --objective 2q-count \
 *            --epsilon 1e-5 --time 10 --threads 4 --seed 1
 *
 * `--in -` (the default) reads the program from stdin; `--out -` (the
 * default) writes to stdout. Progress and statistics go to stderr so
 * the QASM stream stays pipeable.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/portfolio.h"
#include "ir/gate_set.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "sim/unitary_sim.h"

namespace {

using namespace guoq;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Optimize an OpenQASM 2.0 circuit with GUOQ.\n"
        "\n"
        "options:\n"
        "  --in FILE        input QASM file, or - for stdin (default -)\n"
        "  --out FILE       output QASM file, or - for stdout (default -)\n"
        "  --gate-set S     ibmq20 | ibm-eagle | ionq | nam | cliffordt\n"
        "                   (default nam)\n"
        "  --objective O    2q-count | t-count | 2t+cx | fidelity |\n"
        "                   gate-count | depth  (default 2q-count)\n"
        "  --epsilon E      total approximation budget eps_f; 0 keeps\n"
        "                   the run exact (default 0)\n"
        "  --time T         wall-clock budget in seconds (default 10)\n"
        "  --threads N      portfolio worker threads (default 1)\n"
        "  --seed S         base RNG seed (default 1)\n"
        "  --iterations K   iteration cap per worker; without an\n"
        "                   explicit --time the cap alone decides where\n"
        "                   the search stops, making runs reproducible\n"
        "                   (default: none, run until --time)\n"
        "  --verify         recompute the Hilbert-Schmidt distance of\n"
        "                   the result against the input (<= 10 qubits)\n"
        "  --quiet          suppress the stderr report\n"
        "  -h, --help       show this message\n",
        argv0);
}

bool
parseGateSet(const std::string &name, ir::GateSetKind &out)
{
    for (ir::GateSetKind set : ir::allGateSets())
        if (ir::gateSetName(set) == name) {
            out = set;
            return true;
        }
    return false;
}

bool
parseObjective(const std::string &name, core::Objective &out)
{
    static const core::Objective all[] = {
        core::Objective::TwoQubitCount, core::Objective::TCount,
        core::Objective::TThenTwoQubit, core::Objective::Fidelity,
        core::Objective::GateCount,     core::Objective::Depth,
    };
    for (core::Objective obj : all)
        if (core::objectiveName(obj) == name) {
            out = obj;
            return true;
        }
    return false;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "guoq_cli: %s\n", msg.c_str());
    std::exit(2);
}

/** Strict numeric parses: reject trailing garbage instead of
 *  silently reading "abc" as 0 (mirrors support::envDouble). */
double
parseDouble(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0' || v.empty())
        die(flag + " expects a number, got '" + v + "'");
    return x;
}

long
parseLong(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const long x = std::strtol(v.c_str(), &end, 10);
    if (!end || *end != '\0' || v.empty())
        die(flag + " expects an integer, got '" + v + "'");
    return x;
}

std::uint64_t
parseSeed(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    // strtoull silently wraps "-3" to 2^64-3; reject the sign upfront.
    if (!end || *end != '\0' || v.empty() || v[0] == '-')
        die(flag + " expects an unsigned integer, got '" + v + "'");
    return static_cast<std::uint64_t>(x);
}

std::string
readAll(std::istream &in)
{
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr double kMaxTimeSeconds = 1e7;
    std::string in_path = "-";
    std::string out_path = "-";
    ir::GateSetKind set = ir::GateSetKind::Nam;
    core::PortfolioConfig cfg;
    cfg.base.epsilonTotal = 0;
    cfg.base.timeBudgetSeconds = 10.0;
    cfg.base.seed = 1;
    bool verify = false;
    bool quiet = false;
    bool explicit_time = false;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            die(std::string(argv[i]) + " expects a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--in") {
            in_path = value(i);
        } else if (arg == "--out") {
            out_path = value(i);
        } else if (arg == "--gate-set") {
            const std::string name = value(i);
            if (!parseGateSet(name, set))
                die("unknown gate set '" + name + "'");
        } else if (arg == "--objective") {
            const std::string name = value(i);
            if (!parseObjective(name, cfg.base.objective))
                die("unknown objective '" + name + "'");
        } else if (arg == "--epsilon") {
            cfg.base.epsilonTotal = parseDouble(arg, value(i));
            // !(>= 0) also rejects NaN, which would otherwise disable
            // every budget comparison in the optimizer.
            if (!(cfg.base.epsilonTotal >= 0) ||
                !std::isfinite(cfg.base.epsilonTotal))
                die("--epsilon must be a finite value >= 0");
        } else if (arg == "--time") {
            cfg.base.timeBudgetSeconds = parseDouble(arg, value(i));
            // The upper bound keeps Deadline's double-to-clock-duration
            // conversion representable; NaN/inf/huge would overflow it
            // into an already-expired deadline (silent 0-iteration run).
            if (!(cfg.base.timeBudgetSeconds > 0) ||
                cfg.base.timeBudgetSeconds > kMaxTimeSeconds)
                die("--time must be in (0, 1e7] seconds");
            explicit_time = true;
        } else if (arg == "--threads") {
            const long n = parseLong(arg, value(i));
            if (n < 1 || n > 1024)
                die("--threads must be in [1, 1024]");
            cfg.threads = static_cast<int>(n);
        } else if (arg == "--seed") {
            cfg.base.seed = parseSeed(arg, value(i));
        } else if (arg == "--iterations") {
            cfg.base.maxIterations = parseLong(arg, value(i));
            // 0 would emit the input unchanged (silent no-op); omit
            // the flag entirely for an unlimited run.
            if (cfg.base.maxIterations < 1)
                die("--iterations must be >= 1");
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0]);
            die("unknown argument '" + arg + "'");
        }
    }

    // An iteration cap without an explicit --time means "reproducible
    // run": lift the default 10 s budget so the cap — not machine
    // speed — decides where the search stops.
    if (cfg.base.maxIterations >= 0 && !explicit_time)
        cfg.base.timeBudgetSeconds = kMaxTimeSeconds;

    const ir::Circuit input =
        in_path == "-" ? qasm::parse(readAll(std::cin))
                       : qasm::parseFile(in_path);
    // Fail fast, before the optimization run: verification builds the
    // full 2^n x 2^n unitary, which is hopeless past ~10 qubits.
    if (verify && input.numQubits() > 10)
        die("--verify builds the full 2^n unitary and supports at most "
            "10 qubits; input has " +
            std::to_string(input.numQubits()));
    if (!quiet)
        std::fprintf(stderr,
                     "guoq_cli: %zu gates (%zu two-qubit) on %d qubits, "
                     "gate set %s, objective %s, eps=%g, %gs x %d "
                     "thread(s)\n",
                     input.size(), input.twoQubitGateCount(),
                     input.numQubits(), ir::gateSetName(set).c_str(),
                     core::objectiveName(cfg.base.objective).c_str(),
                     cfg.base.epsilonTotal, cfg.base.timeBudgetSeconds,
                     cfg.threads);

    const core::PortfolioResult result =
        core::optimizePortfolio(input, set, cfg);

    if (!quiet) {
        std::fprintf(stderr,
                     "guoq_cli: best cost %g (worker %d), %zu gates "
                     "(%zu two-qubit), error bound %.3g\n",
                     result.bestCost, result.winningWorker,
                     result.best.size(), result.best.twoQubitGateCount(),
                     result.errorBound);
        std::fprintf(stderr,
                     "guoq_cli: %ld iterations total, %ld accepted, "
                     "%ld resynthesis accepts, %.2fs wall\n",
                     result.stats.iterations, result.stats.accepted,
                     result.stats.resynthAccepted, result.stats.seconds);
        for (const core::PortfolioWorkerReport &w : result.workers)
            std::fprintf(stderr,
                         "guoq_cli:   worker %d: seed %llu, final cost "
                         "%g, %ld iterations\n",
                         w.worker,
                         static_cast<unsigned long long>(w.seed),
                         w.finalCost, w.stats.iterations);
    }

    if (verify) {
        const double d = sim::circuitDistance(input, result.best);
        std::fprintf(stderr,
                     "guoq_cli: verified HS distance %.3g (budget %g)\n",
                     d, cfg.base.epsilonTotal);
        if (d > cfg.base.epsilonTotal + 1e-6)
            die("verification FAILED: distance exceeds budget");
    }

    if (out_path == "-")
        std::fputs(qasm::toQasm(result.best).c_str(), stdout);
    else
        qasm::writeQasmFile(result.best, out_path);
    return 0;
}
