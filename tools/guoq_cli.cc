/**
 * @file
 * Command-line driver: OpenQASM 2.0/3.x in, optimized OpenQASM out.
 *
 * Single-file mode (the default) reads one circuit and writes one:
 *
 *   guoq_cli --in circuit.qasm --out optimized.qasm \
 *            --gate-set nam --objective 2q-count \
 *            --epsilon 1e-5 --time 10 --threads 4 --seed 1
 *
 * `--in -` (the default) reads the program from stdin; `--out -` (the
 * default) writes to stdout. Progress and statistics go to stderr so
 * the QASM stream stays pipeable.
 *
 * Batch mode drives a whole suite through one process:
 *
 *   guoq_cli --batch suite/ --out-dir suite-opt --jobs 4 --time 5
 *
 * Every *.qasm under the directory is discovered recursively, each
 * file is optimized (--jobs files concurrently, each as a --threads
 * portfolio), outputs mirror the input tree under --out-dir, and a
 * `guoq-batch-v1` JSON summary is written. A malformed file marks
 * that file failed (with a file:line:col diagnostic) but never aborts
 * the rest of the suite.
 *
 * Serve mode turns the process into a long-lived optimization service:
 *
 *   guoq_cli --serve --jobs 4 --capacity 64 --deadline-ms 5000
 *
 * `guoq-serve-v1` frames are read from stdin (docs/FORMATS.md), each
 * request is optimized by a worker pool sharing the process-wide
 * synthesis cache, and one `guoq-serve-row-v1` JSON line per request
 * streams to stdout as it finishes. Admission is credit-bounded
 * (--capacity), per-request deadlines are cooperative, and EOF or
 * SIGTERM/SIGINT drains in-flight requests before exit. Batch mode
 * rides the same pipeline (src/serve/), so files start optimizing as
 * the directory walk discovers them.
 *
 * Exit codes: 0 success; 1 runtime failure (parse/verify errors, or a
 * batch with failed files unless --keep-going); 2 usage errors. The
 * full CLI contract lives in README.md and docs/FORMATS.md.
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/emit.h"
#include "core/observer.h"
#include "core/optimizer.h"
#include "core/portfolio.h"
#include "ir/gate_set.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "serve/server.h"
#include "support/logging.h"
#include "support/table.h"
#include "synth/service.h"
#include "verify/checker.h"

namespace {

namespace fs = std::filesystem;
using namespace guoq;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Optimize OpenQASM 2.0/3.x circuits with GUOQ. Full reference:\n"
        "README.md; input/output format contract: docs/FORMATS.md.\n"
        "\n"
        "input/output:\n"
        "  --in FILE        input QASM file, or - for stdin (default -)\n"
        "  --out FILE       output QASM file, or - for stdout (default -)\n"
        "  --dialect D      input dialect: auto | qasm2 | qasm3\n"
        "                   (default auto: detect from the OPENQASM\n"
        "                   version line)\n"
        "  --out-dialect D  output dialect: auto | qasm2 | qasm3\n"
        "                   (default auto: match the input dialect)\n"
        "\n"
        "batch mode:\n"
        "  --batch DIR      optimize every *.qasm under DIR (recursive);\n"
        "                   excludes --in/--out\n"
        "  --out-dir DIR    output root mirroring the input tree\n"
        "                   (default: <batch-dir>-opt)\n"
        "  --jobs N         requests optimized concurrently (batch and\n"
        "                   serve; default 1; total worker threads =\n"
        "                   jobs x threads)\n"
        "  --keep-going     exit 0 even when some files fail (failures\n"
        "                   still reported per file and in the summary)\n"
        "  --summary FILE   guoq-batch-v1 JSON summary path, - for\n"
        "                   stdout (default <out-dir>/summary.json)\n"
        "\n"
        "serve mode:\n"
        "  --serve          optimize guoq-serve-v1 frames from stdin,\n"
        "                   streaming one guoq-serve-row-v1 JSON line\n"
        "                   per request to stdout as it finishes\n"
        "                   (framing/row schema: docs/FORMATS.md);\n"
        "                   excludes --in/--out/--batch\n"
        "  --capacity N     max requests in flight between admission\n"
        "                   and emission; the reader blocks when all\n"
        "                   credits are out (batch and serve;\n"
        "                   default 64)\n"
        "  --deadline-ms D  default per-request deadline, cooperative:\n"
        "                   an expired request returns its best-so-far\n"
        "                   result (batch and serve; frames may\n"
        "                   override; default: none)\n"
        "\n"
        "optimization:\n"
        "  --algorithm A    optimizer to run (default guoq); see\n"
        "                   --list-algorithms for the full registry\n"
        "  --param K=V      algorithm-specific parameter (repeatable);\n"
        "                   keys are validated against the selected\n"
        "                   algorithm's declared parameters\n"
        "  --list-algorithms\n"
        "                   list registered algorithms and their\n"
        "                   parameters, then exit\n"
        "  --gate-set S     ibmq20 | ibm-eagle | ionq | nam | cliffordt\n"
        "                   (default nam)\n"
        "  --objective O    2q-count | t-count | 2t+cx | fidelity |\n"
        "                   gate-count | depth  (default 2q-count)\n"
        "  --epsilon E      total approximation budget eps_f; 0 keeps\n"
        "                   the run exact (default 0)\n"
        "  --time T         wall-clock budget in seconds, per file\n"
        "                   (default 10)\n"
        "  --threads N      portfolio worker threads (default 1)\n"
        "  --seed S         base RNG seed (default 1)\n"
        "  --synth-workers N\n"
        "                   shared asynchronous synthesis workers\n"
        "                   (default 0 = synchronous resynthesis);\n"
        "                   sets the algorithm's synth-workers param\n"
        "  --synth-cache DIR\n"
        "                   persistent content-addressed synthesis\n"
        "                   cache: results load from DIR at startup\n"
        "                   and are saved back at exit, so reruns\n"
        "                   warm-start (format: docs/FORMATS.md)\n"
        "  --iterations K   iteration cap per worker; without an\n"
        "                   explicit --time the cap alone decides where\n"
        "                   the search stops, making runs reproducible\n"
        "                   (default: none, run until --time)\n"
        "  --verify         check the result against the input: exact\n"
        "                   HS distance up to 10 qubits, a sampled\n"
        "                   estimate with a confidence bound above\n"
        "  --verify-method M\n"
        "                   auto | dense | sampling (default auto;\n"
        "                   implies --verify)\n"
        "  --verify-shots N shots for the sampling estimator\n"
        "                   (default 1024; implies --verify)\n"
        "  --progress       stream best-cost improvements to stderr as\n"
        "                   they happen (single-file mode)\n"
        "  --quiet          suppress the stderr report\n"
        "  -h, --help       show this message\n",
        argv0);
}

bool
parseGateSet(const std::string &name, ir::GateSetKind &out)
{
    for (ir::GateSetKind set : ir::allGateSets())
        if (ir::gateSetName(set) == name) {
            out = set;
            return true;
        }
    return false;
}

bool
parseObjective(const std::string &name, core::Objective &out)
{
    static const core::Objective all[] = {
        core::Objective::TwoQubitCount, core::Objective::TCount,
        core::Objective::TThenTwoQubit, core::Objective::Fidelity,
        core::Objective::GateCount,     core::Objective::Depth,
    };
    for (core::Objective obj : all)
        if (core::objectiveName(obj) == name) {
            out = obj;
            return true;
        }
    return false;
}

/** Usage error: bad flags/values. Exits 2 per the CLI contract. */
[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "guoq_cli: %s\n", msg.c_str());
    std::exit(2);
}

/** Runtime failure (I/O, environment). Exits 1 per the contract. */
[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "guoq_cli: %s\n", msg.c_str());
    std::exit(1);
}

/** Strict numeric parses: reject trailing garbage instead of
 *  silently reading "abc" as 0 (mirrors support::envDouble). */
double
parseDouble(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0' || v.empty())
        die(flag + " expects a number, got '" + v + "'");
    return x;
}

long
parseLong(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const long x = std::strtol(v.c_str(), &end, 10);
    if (!end || *end != '\0' || v.empty())
        die(flag + " expects an integer, got '" + v + "'");
    return x;
}

std::uint64_t
parseSeed(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    // strtoull silently wraps "-3" to 2^64-3; reject the sign upfront.
    if (!end || *end != '\0' || v.empty() || v[0] == '-')
        die(flag + " expects an unsigned integer, got '" + v + "'");
    return static_cast<std::uint64_t>(x);
}

std::string
readAll(std::istream &in)
{
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Everything the flag parser produces. */
struct CliOptions
{
    std::string inPath = "-";
    std::string outPath = "-";
    std::string batchDir;
    std::string outDir;
    std::string summaryPath;
    qasm::Dialect inDialect = qasm::Dialect::Auto;
    qasm::Dialect outDialect = qasm::Dialect::Auto;
    ir::GateSetKind set = ir::GateSetKind::Nam;
    std::string algorithm = "guoq";
    core::ParamMap params;
    core::PortfolioConfig cfg;
    int synthWorkers = 0;
    std::string synthCacheDir;
    int jobs = 1;
    bool serveMode = false;
    std::size_t capacity = 64;
    double deadlineMs = 0;
    bool keepGoing = false;
    bool verify = false;
    std::string verifyMethod = "auto";
    long verifyShots = 1024;
    bool progress = false;
    bool quiet = false;

    /** The registry entry selected by --algorithm; resolved (and
     *  params validated) once in main(). */
    const core::Optimizer *optimizer = nullptr;

    /** The verification backend selected by --verify-method; resolved
     *  once in main() (nullptr when --verify is off). */
    const verify::EquivalenceChecker *checker = nullptr;

    /** The circuit-independent request --algorithm/--param and the
     *  shared flags describe. */
    core::OptimizeRequest
    request() const
    {
        core::OptimizeRequest req;
        req.set = set;
        req.objective = cfg.base.objective;
        req.epsilonTotal = cfg.base.epsilonTotal;
        req.timeBudgetSeconds = cfg.base.timeBudgetSeconds;
        req.maxIterations = cfg.base.maxIterations;
        req.seed = cfg.base.seed;
        req.threads = cfg.threads;
        req.params = params;
        return req;
    }

    /** The verification request the --verify* and shared flags
     *  describe. The 1e-6 tolerance preserves the historical noise
     *  floor of the exact check's over-budget comparison. */
    verify::VerifyRequest
    verifyRequest() const
    {
        verify::VerifyRequest req;
        req.epsilon = cfg.base.epsilonTotal;
        req.tolerance = 1e-6;
        req.shots = verifyShots;
        req.seed = cfg.base.seed;
        req.threads = cfg.threads;
        req.method = verifyMethod;
        return req;
    }
};

/** The pipeline configuration (serve/server.h) these options
 *  describe; both --serve and --batch run on it. */
serve::Config
makeConfig(const CliOptions &opt)
{
    serve::Config cfg;
    cfg.set = opt.set;
    cfg.inDialect = opt.inDialect;
    cfg.outDialect = opt.outDialect;
    cfg.algorithm = opt.algorithm;
    cfg.optimizer = opt.optimizer;
    cfg.base = opt.request();
    cfg.verify = opt.verify;
    cfg.checker = opt.checker;
    cfg.verifyBase = opt.verifyRequest();
    cfg.jobs = opt.jobs;
    cfg.capacity = opt.capacity;
    cfg.deadlineMs = opt.deadlineMs;
    cfg.quiet = opt.quiet;
    return cfg;
}

/** --list-algorithms: the registry, self-described. */
void
listAlgorithms()
{
    for (const core::Optimizer *opt :
         core::OptimizerRegistry::global().all()) {
        const core::OptimizerInfo &info = opt->info();
        std::printf("%-18s %s\n", info.name.c_str(),
                    info.summary.c_str());
        for (const core::ParamSpec &p : info.params)
            std::printf("    --param %s=<%s>  %s (default %s)\n",
                        p.key.c_str(), core::paramKindName(p.kind),
                        p.summary.c_str(), p.defaultValue.c_str());
    }
}

/** The output dialect for an input parsed as @p in. */
qasm::Dialect
outputDialect(const CliOptions &opt, qasm::Dialect in)
{
    return opt.outDialect == qasm::Dialect::Auto ? in : opt.outDialect;
}

// --- batch mode ------------------------------------------------------

int
runBatch(const CliOptions &opt)
{
    // Normalize away a trailing slash so the default output root is
    // the documented sibling `<DIR>-opt`, not `<DIR>/-opt`.
    fs::path root = fs::path(opt.batchDir).lexically_normal();
    if (!root.has_filename())
        root = root.parent_path();
    std::error_code ec;
    if (!fs::is_directory(root, ec))
        die("--batch: not a directory: " + opt.batchDir);
    const fs::path outRoot = opt.outDir.empty()
                                 ? fs::path(root.string() + "-opt")
                                 : fs::path(opt.outDir);

    if (!opt.quiet)
        std::fprintf(stderr,
                     "guoq_cli: batch from %s -> %s, algorithm %s, "
                     "%d job(s) x %d thread(s), %gs per file\n",
                     root.generic_string().c_str(),
                     outRoot.generic_string().c_str(),
                     opt.algorithm.c_str(), opt.jobs, opt.cfg.threads,
                     opt.cfg.base.timeBudgetSeconds);

    // Streaming pipeline (serve/server.h): the directory walk feeds
    // files into --jobs workers as it discovers them, bounded at
    // --capacity files in flight, instead of load-everything-first.
    const serve::BatchResult result = serve::runBatch(
        root.generic_string(), outRoot.generic_string(),
        makeConfig(opt));
    if (!result.scanOk)
        fail("--batch: cannot scan " + opt.batchDir + ": " +
             result.scanError);
    if (result.entries.empty())
        die("--batch: no .qasm files under " + opt.batchDir);
    const std::vector<bench::BatchFileEntry> &entries = result.entries;

    // Per-file status table (stderr keeps a batch's stdout clean for
    // the optional `--summary -` JSON stream).
    std::size_t failed = 0, skipped = 0;
    if (!opt.quiet) {
        support::TextTable table({"file", "status", "qubits", "gates",
                                  "2q", "verify", "seconds", "detail"});
        for (const bench::BatchFileEntry &e : entries) {
            std::string detail = e.message;
            if (e.line > 0)
                detail = support::strcat(e.line, ":", e.col, ": ",
                                         e.message);
            const bool optimized =
                e.status == "ok" || e.status == "verify_skipped";
            std::string verify_cell;
            if (e.verified)
                verify_cell = support::strcat(
                    e.verifyMethod, " ",
                    support::fmt(e.verifyDistance, 3),
                    e.verifyBound > 0
                        ? support::strcat(
                              " +/- ", support::fmt(e.verifyBound, 3))
                        : "");
            table.addRow(
                {e.file, e.status,
                 optimized ? std::to_string(e.qubits) : "",
                 optimized ? support::strcat(e.gatesBefore, " -> ",
                                             e.gatesAfter)
                           : "",
                 optimized ? support::strcat(e.twoQubitBefore, " -> ",
                                             e.twoQubitAfter)
                           : "",
                 verify_cell, support::fmt(e.seconds, 2), detail});
        }
        std::fputs(table.render().c_str(), stderr);
    }
    for (const bench::BatchFileEntry &e : entries) {
        failed +=
            e.status == "ok" || e.status == "verify_skipped" ? 0 : 1;
        skipped += e.status == "verify_skipped" ? 1 : 0;
    }
    // A skipped check is survivable but must be loud: the result was
    // written without its --verify guarantee.
    if (skipped > 0)
        std::fprintf(stderr,
                     "guoq_cli: warning: verification skipped on %zu "
                     "file(s); see the per-file messages\n",
                     skipped);

    bench::BatchRunMeta meta;
    meta.inputDir = root.generic_string();
    meta.outputDir = outRoot.generic_string();
    meta.gateSet = ir::gateSetName(opt.set);
    meta.objective = core::objectiveName(opt.cfg.base.objective);
    meta.algorithm = opt.algorithm;
    meta.epsilon = opt.cfg.base.epsilonTotal;
    meta.timeBudgetSeconds = opt.cfg.base.timeBudgetSeconds;
    meta.threads = opt.cfg.threads;
    meta.jobs = opt.jobs;
    meta.seed = opt.cfg.base.seed;
    meta.synthWorkers = opt.synthWorkers;
    meta.synthCacheDir = opt.synthCacheDir;
    if (!opt.quiet && !opt.synthCacheDir.empty()) {
        long hits = 0, misses = 0, stores = 0;
        for (const bench::BatchFileEntry &e : entries) {
            hits += e.synthCacheHits;
            misses += e.synthCacheMisses;
            stores += e.synthCacheStores;
        }
        std::fprintf(stderr,
                     "guoq_cli: synthesis cache: %ld hit(s), %ld "
                     "miss(es), %ld store(s)\n",
                     hits, misses, stores);
    }
    const std::string json = bench::toBatchJson(meta, entries);
    const std::string summaryPath =
        opt.summaryPath.empty()
            ? (outRoot / "summary.json").generic_string()
            : opt.summaryPath;
    if (summaryPath == "-") {
        std::fputs(json.c_str(), stdout);
    } else {
        fs::create_directories(
            fs::path(summaryPath).parent_path(), ec);
        std::ofstream out(summaryPath);
        if (out) {
            out << json;
            out.close();
        }
        if (!out)
            fail("cannot write summary " + summaryPath);
        if (!opt.quiet)
            std::fprintf(stderr, "guoq_cli: summary -> %s\n",
                         summaryPath.c_str());
    }

    if (!opt.quiet)
        std::fprintf(stderr,
                     "guoq_cli: %zu/%zu file(s) ok, %zu failed, %zu "
                     "verify-skipped\n",
                     entries.size() - failed - skipped, entries.size(),
                     failed, skipped);
    if (failed > 0 && !opt.keepGoing)
        return 1;
    return 0;
}

// --- serve mode ------------------------------------------------------

/** The flag the signal handler flips: the serve run's shutdown
 *  CancelToken atomic (only async-signal-safe atomic stores happen in
 *  the handler). */
std::atomic<std::atomic<bool> *> g_shutdownFlag{nullptr};

void
handleShutdownSignal(int)
{
    if (std::atomic<bool> *flag =
            g_shutdownFlag.load(std::memory_order_relaxed))
        flag->store(true, std::memory_order_relaxed);
}

/** Route SIGTERM/SIGINT into the shutdown token. No SA_RESTART: the
 *  signal must interrupt the reader's blocking stdin read so an idle
 *  server drains and exits instead of waiting for the next frame. */
void
installShutdownHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = handleShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

int
runServe(const CliOptions &opt)
{
    serve::Config cfg = makeConfig(opt);
    cfg.shutdown = core::makeCancelToken();
    g_shutdownFlag.store(cfg.shutdown.get());
    installShutdownHandlers();

    if (!opt.quiet)
        std::fprintf(stderr,
                     "guoq_cli: serving guoq-serve-v1 frames from "
                     "stdin, algorithm %s, %d job(s) x %d thread(s), "
                     "capacity %zu\n",
                     opt.algorithm.c_str(), opt.jobs, opt.cfg.threads,
                     cfg.capacity);

    const serve::ServeStats stats =
        serve::runServe(std::cin, std::cout, cfg);

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_shutdownFlag.store(nullptr);

    if (!opt.quiet)
        std::fprintf(stderr,
                     "guoq_cli: served %zu row(s): %zu ok, %zu frame "
                     "error(s), peak %zu request(s) in flight\n",
                     stats.rows, stats.okRows, stats.frameErrors,
                     stats.peakInFlight);
    if (!stats.outputOk)
        fail("cannot write response rows to stdout");
    return 0;
}

// --- single-file mode ------------------------------------------------

int
runSingle(const CliOptions &opt)
{
    qasm::ParseResult pr =
        opt.inPath == "-"
            ? qasm::parseSource(readAll(std::cin), opt.inDialect,
                                "<stdin>")
            : qasm::parseSourceFile(opt.inPath, opt.inDialect);
    if (!pr.ok) {
        std::fprintf(stderr, "guoq_cli: %s\n", pr.error.str().c_str());
        return 1;
    }
    const ir::Circuit &input = pr.circuit;
    // Fail fast, before spending the optimization budget, when the
    // selected verification backend cannot handle this input at all
    // (e.g. --verify-method dense past the unitary cap, or any method
    // past the sampling cap). Runtime failure, not a usage error: it
    // depends on the input circuit, and unlike batch mode there is no
    // other file to carry on with.
    if (opt.verify) {
        const std::string err = opt.checker->checkRequest(
            input, input, opt.verifyRequest());
        if (!err.empty())
            fail("--verify: " + err);
    }
    if (!opt.quiet)
        std::fprintf(stderr,
                     "guoq_cli: %zu gates (%zu two-qubit) on %d qubits "
                     "(%s), algorithm %s, gate set %s, objective %s, "
                     "eps=%g, %gs x %d thread(s)\n",
                     input.size(), input.twoQubitGateCount(),
                     input.numQubits(),
                     qasm::dialectName(pr.dialect).c_str(),
                     opt.algorithm.c_str(),
                     ir::gateSetName(opt.set).c_str(),
                     core::objectiveName(opt.cfg.base.objective).c_str(),
                     opt.cfg.base.epsilonTotal,
                     opt.cfg.base.timeBudgetSeconds, opt.cfg.threads);

    core::OptimizeRequest req = opt.request();
    if (opt.progress)
        req.hooks.onBest = [](const core::ProgressEvent &ev) {
            if (ev.worker >= 0)
                std::fprintf(stderr,
                             "guoq_cli: t=%.3fs best cost %g (%zu "
                             "gates, worker %d)\n",
                             ev.seconds, ev.cost, ev.gateCount,
                             ev.worker);
            else
                std::fprintf(stderr,
                             "guoq_cli: t=%.3fs best cost %g (%zu "
                             "gates)\n",
                             ev.seconds, ev.cost, ev.gateCount);
        };
    core::OptimizeReport result = opt.optimizer->run(input, req);

    if (!opt.quiet) {
        std::fprintf(stderr,
                     "guoq_cli: best cost %g, %zu gates "
                     "(%zu two-qubit), error bound %.3g\n",
                     result.cost, result.circuit.size(),
                     result.circuit.twoQubitGateCount(),
                     result.errorBound);
        std::fprintf(stderr,
                     "guoq_cli: %ld iterations total, %ld accepted, "
                     "%ld resynthesis accepts, %.2fs wall\n",
                     result.stats.iterations, result.stats.accepted,
                     result.stats.resynthAccepted, result.stats.seconds);
        if (!opt.synthCacheDir.empty() || opt.synthWorkers > 0)
            std::fprintf(stderr,
                         "guoq_cli: synthesis cache: %ld hit(s), %ld "
                         "miss(es), %ld store(s); pool queue peak %ld\n",
                         result.stats.synthCacheHits,
                         result.stats.synthCacheMisses,
                         result.stats.synthCacheStores,
                         result.stats.poolQueuePeak);
        for (const core::PortfolioWorkerReport &w : result.workers)
            std::fprintf(stderr,
                         "guoq_cli:   worker %d: seed %llu, final cost "
                         "%g, %ld iterations\n",
                         w.worker,
                         static_cast<unsigned long long>(w.seed),
                         w.finalCost, w.stats.iterations);
    }

    if (opt.verify) {
        const verify::VerifyRequest vreq = opt.verifyRequest();
        result.verification =
            opt.checker->run(input, result.circuit, vreq);
        const verify::VerifyReport &vr = result.verification;
        if (vr.shots > 0)
            std::fprintf(stderr,
                         "guoq_cli: verified (%s): HS distance %.3g "
                         "+/- %.3g at %g%% confidence, %ld shots, "
                         "%.2fs (budget %g): %s\n",
                         vr.method.c_str(), vr.distanceEstimate,
                         vr.bound, vr.confidence * 100, vr.shots,
                         vr.wallSeconds, opt.cfg.base.epsilonTotal,
                         verify::verdictName(vr.verdict));
        else
            std::fprintf(stderr,
                         "guoq_cli: verified (%s): HS distance %.3g "
                         "(budget %g): %s\n",
                         vr.method.c_str(), vr.distanceEstimate,
                         opt.cfg.base.epsilonTotal,
                         verify::verdictName(vr.verdict));
        if (vr.verdict == verify::Verdict::Inequivalent) {
            std::fprintf(stderr, "guoq_cli: verification FAILED: "
                                 "distance exceeds budget\n");
            return 1;
        }
    }

    const qasm::Dialect out_d = outputDialect(opt, pr.dialect);
    if (opt.outPath == "-")
        std::fputs(qasm::toQasm(result.circuit, out_d).c_str(), stdout);
    else
        qasm::writeQasmFile(result.circuit, opt.outPath, out_d);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr double kMaxTimeSeconds = 1e7;
    CliOptions opt;
    opt.cfg.base.epsilonTotal = 0;
    opt.cfg.base.timeBudgetSeconds = 10.0;
    opt.cfg.base.seed = 1;
    bool explicit_time = false;
    bool explicit_in = false;
    bool explicit_out = false;
    bool explicit_capacity = false;
    bool explicit_deadline = false;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            die(std::string(argv[i]) + " expects a value");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--in") {
            opt.inPath = value(i);
            explicit_in = true;
        } else if (arg == "--out") {
            opt.outPath = value(i);
            explicit_out = true;
        } else if (arg == "--batch") {
            opt.batchDir = value(i);
        } else if (arg == "--out-dir") {
            opt.outDir = value(i);
        } else if (arg == "--summary") {
            opt.summaryPath = value(i);
        } else if (arg == "--serve") {
            opt.serveMode = true;
        } else if (arg == "--capacity") {
            const long n = parseLong(arg, value(i));
            // The cap exists to bound memory (capacity x payload
            // bytes can be resident); 2^20 is far past any sane
            // pipeline depth but still a guard against typos.
            if (n < 1 || n > (1L << 20))
                die("--capacity must be in [1, 1048576]");
            opt.capacity = static_cast<std::size_t>(n);
            explicit_capacity = true;
        } else if (arg == "--deadline-ms") {
            opt.deadlineMs = parseDouble(arg, value(i));
            if (!(opt.deadlineMs > 0) || opt.deadlineMs > 1e9)
                die("--deadline-ms must be in (0, 1e9]");
            explicit_deadline = true;
        } else if (arg == "--keep-going") {
            opt.keepGoing = true;
        } else if (arg == "--jobs") {
            const long n = parseLong(arg, value(i));
            if (n < 1 || n > 256)
                die("--jobs must be in [1, 256]");
            opt.jobs = static_cast<int>(n);
        } else if (arg == "--dialect") {
            const std::string name = value(i);
            if (!qasm::dialectFromName(name, &opt.inDialect))
                die("unknown dialect '" + name + "'");
        } else if (arg == "--out-dialect") {
            const std::string name = value(i);
            if (!qasm::dialectFromName(name, &opt.outDialect))
                die("unknown dialect '" + name + "'");
        } else if (arg == "--list-algorithms") {
            listAlgorithms();
            return 0;
        } else if (arg == "--algorithm") {
            opt.algorithm = value(i);
        } else if (arg == "--param") {
            const std::string kv = value(i);
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                die("--param expects KEY=VALUE, got '" + kv + "'");
            opt.params[kv.substr(0, eq)] = kv.substr(eq + 1);
        } else if (arg == "--gate-set") {
            const std::string name = value(i);
            if (!parseGateSet(name, opt.set))
                die("unknown gate set '" + name + "'");
        } else if (arg == "--objective") {
            const std::string name = value(i);
            if (!parseObjective(name, opt.cfg.base.objective))
                die("unknown objective '" + name + "'");
        } else if (arg == "--epsilon") {
            opt.cfg.base.epsilonTotal = parseDouble(arg, value(i));
            // !(>= 0) also rejects NaN, which would otherwise disable
            // every budget comparison in the optimizer.
            if (!(opt.cfg.base.epsilonTotal >= 0) ||
                !std::isfinite(opt.cfg.base.epsilonTotal))
                die("--epsilon must be a finite value >= 0");
        } else if (arg == "--time") {
            opt.cfg.base.timeBudgetSeconds = parseDouble(arg, value(i));
            // The upper bound keeps Deadline's double-to-clock-duration
            // conversion representable; NaN/inf/huge would overflow it
            // into an already-expired deadline (silent 0-iteration run).
            if (!(opt.cfg.base.timeBudgetSeconds > 0) ||
                opt.cfg.base.timeBudgetSeconds > kMaxTimeSeconds)
                die("--time must be in (0, 1e7] seconds");
            explicit_time = true;
        } else if (arg == "--threads") {
            const long n = parseLong(arg, value(i));
            if (n < 1 || n > 1024)
                die("--threads must be in [1, 1024]");
            opt.cfg.threads = static_cast<int>(n);
        } else if (arg == "--seed") {
            opt.cfg.base.seed = parseSeed(arg, value(i));
        } else if (arg == "--synth-workers") {
            const long n = parseLong(arg, value(i));
            if (n < 0 || n > 256)
                die("--synth-workers must be in [0, 256]");
            opt.synthWorkers = static_cast<int>(n);
        } else if (arg == "--synth-cache") {
            opt.synthCacheDir = value(i);
            if (opt.synthCacheDir.empty())
                die("--synth-cache expects a directory");
        } else if (arg == "--iterations") {
            opt.cfg.base.maxIterations = parseLong(arg, value(i));
            // 0 would emit the input unchanged (silent no-op); omit
            // the flag entirely for an unlimited run.
            if (opt.cfg.base.maxIterations < 1)
                die("--iterations must be >= 1");
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--verify-method") {
            opt.verifyMethod = value(i);
            opt.verify = true;
        } else if (arg == "--verify-shots") {
            const long n = parseLong(arg, value(i));
            // The cap bounds the estimator's O(shots) bookkeeping to
            // ~24 MB; at 1e6 shots the Hoeffding half-width is
            // already < 0.01 in overlap, far past any useful bound.
            if (n < 1 || n > 1000000)
                die("--verify-shots must be in [1, 1e6]");
            opt.verifyShots = n;
            opt.verify = true;
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            usage(argv[0]);
            die("unknown argument '" + arg + "'");
        }
    }

    const bool batch = !opt.batchDir.empty();
    if (opt.serveMode && batch)
        die("--serve excludes --batch");
    if (opt.serveMode && (explicit_in || explicit_out))
        die("--serve frames requests over stdin/stdout; --in/--out "
            "do not apply");
    if (batch && (explicit_in || explicit_out))
        die("--batch excludes --in/--out (use --out-dir)");
    if (!batch &&
        (!opt.outDir.empty() || !opt.summaryPath.empty() ||
         opt.keepGoing))
        die("--out-dir/--summary/--keep-going require --batch");
    if (!batch && !opt.serveMode && opt.jobs != 1)
        die("--jobs requires --batch or --serve");
    if (!batch && !opt.serveMode &&
        (explicit_capacity || explicit_deadline))
        die("--capacity/--deadline-ms require --batch or --serve");
    if ((batch || opt.serveMode) && opt.progress)
        die("--progress requires single-file mode");

    // Resolve --algorithm against the registry and validate every
    // --param key/value against its declared metadata — a typo must
    // fail loudly here, not be silently ignored by the run.
    const core::OptimizerRegistry &registry =
        core::OptimizerRegistry::global();
    opt.optimizer = registry.find(opt.algorithm);
    if (!opt.optimizer) {
        std::string msg = "unknown algorithm '" + opt.algorithm + "'";
        const std::string guess =
            core::closestName(opt.algorithm, registry.names());
        if (!guess.empty())
            msg += " (did you mean '" + guess + "'?)";
        die(msg + "; see --list-algorithms");
    }
    // --synth-workers maps onto the algorithm's own `synth-workers`
    // parameter when it declares one (the GUOQ family); algorithms
    // without the parameter (exact baselines) simply leave the shared
    // pool idle. An explicit --param synth-workers=N wins.
    if (opt.synthWorkers > 0 &&
        opt.params.find("synth-workers") == opt.params.end()) {
        for (const core::ParamSpec &p : opt.optimizer->info().params)
            if (p.key == "synth-workers") {
                opt.params["synth-workers"] =
                    std::to_string(opt.synthWorkers);
                break;
            }
    }

    // checkRequest covers both the --param metadata and algorithm
    // preconditions (e.g. guoq-resynth without --epsilon), so a
    // misconfigured run is a usage error here instead of a fatal()
    // abort mid-run (which in batch mode would lose the summary).
    const std::string request_err =
        opt.optimizer->checkRequest(opt.request());
    if (!request_err.empty())
        die(request_err);

    // Resolve --verify-method against the checker registry, with the
    // same did-you-mean treatment as --algorithm.
    if (opt.verify) {
        const verify::CheckerRegistry &checkers =
            verify::CheckerRegistry::global();
        opt.checker = checkers.find(opt.verifyMethod);
        if (!opt.checker) {
            std::string msg = "unknown verification method '" +
                              opt.verifyMethod + "'";
            const std::string guess = core::closestName(
                opt.verifyMethod, checkers.names());
            if (!guess.empty())
                msg += " (did you mean '" + guess + "'?)";
            msg += "; methods:";
            for (const std::string &name : checkers.names())
                msg += " " + name;
            die(msg);
        }
    }

    // An iteration cap without an explicit --time means "reproducible
    // run": lift the default 10 s budget so the cap — not machine
    // speed — decides where the search stops.
    if (opt.cfg.base.maxIterations >= 0 && !explicit_time)
        opt.cfg.base.timeBudgetSeconds = kMaxTimeSeconds;

    // Configure the process-wide synthesis service every resynthesis
    // call routes through: the shared worker pool (all jobs and
    // portfolio workers submit to it) and the persistent cache tier.
    synth::SynthService &service = synth::SynthService::global();
    if (opt.synthWorkers > 0)
        service.configurePool(opt.synthWorkers);
    if (!opt.synthCacheDir.empty()) {
        std::error_code cache_ec;
        fs::create_directories(opt.synthCacheDir, cache_ec);
        if (cache_ec)
            fail("--synth-cache: cannot create " + opt.synthCacheDir +
                 ": " + cache_ec.message());
        std::string err;
        if (!service.loadCacheDir(opt.synthCacheDir, &err))
            std::fprintf(stderr, "guoq_cli: warning: %s; starting "
                                 "with an empty cache\n",
                         err.c_str());
        else if (!err.empty())
            std::fprintf(stderr, "guoq_cli: warning: %s\n", err.c_str());
        if (!opt.quiet)
            std::fprintf(stderr,
                         "guoq_cli: synthesis cache: %zu entr%s "
                         "loaded from %s\n",
                         service.cache().size(),
                         service.cache().size() == 1 ? "y" : "ies",
                         opt.synthCacheDir.c_str());
    }

    const int rc = opt.serveMode ? runServe(opt)
                   : batch       ? runBatch(opt)
                                 : runSingle(opt);

    if (!opt.synthCacheDir.empty()) {
        std::string err;
        if (!service.saveCacheDir(opt.synthCacheDir, &err))
            fail("--synth-cache: " + err);
        if (!opt.quiet)
            std::fprintf(stderr,
                         "guoq_cli: synthesis cache: %zu entr%s "
                         "saved to %s\n",
                         service.cache().size(),
                         service.cache().size() == 1 ? "y" : "ies",
                         opt.synthCacheDir.c_str());
    }
    return rc;
}
